// Discrete-event store-and-forward packet network simulator.
//
// Stand-in for the paper's NS2 setup (Sec. VII): messages are chopped into
// MTU-sized packets, every (undirected) link transmits one packet at a time
// per direction at the configured bandwidth, packets queue FIFO behind the
// link, and each hop adds the propagation latency. Routing is hop-count
// shortest path (all links identical). Protocol rounds are synchronous: the
// packets of round k enter the network only after every packet of round k-1
// has been delivered — matching how the frameworks actually block on their
// predecessors' messages.
//
// This intentionally simplifies TCP to deterministic FIFO serialization: the
// phenomenon Fig. 3(b) demonstrates (many small rounds lose to few bulk
// transfers once latency and congestion matter) is a property of the
// bandwidth/latency arithmetic, not of TCP dynamics. See DESIGN.md.
#pragma once

#include "net/topology.h"
#include "runtime/trace.h"

namespace ppgr::net {

struct SimulatorConfig {
  double bandwidth_bps = 2e6;  // 2 Mbps, per direction (duplex)
  double latency_s = 0.05;     // 50 ms per hop
  std::size_t mtu_bytes = 1500;
  std::size_t header_bytes = 40;  // IP+TCP header per packet
};

struct SimulationResult {
  double total_seconds = 0.0;
  std::vector<double> round_seconds;  // duration of each logical round
  std::size_t packets = 0;
};

class Simulator {
 public:
  Simulator(const Topology& topo, SimulatorConfig config);

  /// Replays a recorded protocol trace. node_of[party] maps party ids to
  /// topology nodes (must be injective).
  [[nodiscard]] SimulationResult replay(
      std::span<const runtime::Transfer> trace,
      std::span<const std::size_t> node_of);

  /// Convenience: one message, returns delivery latency from an idle start.
  [[nodiscard]] double send_once(std::size_t src_node, std::size_t dst_node,
                                 std::size_t bytes);

 private:
  const Topology& topo_;
  SimulatorConfig cfg_;
};

}  // namespace ppgr::net

// Discrete-event store-and-forward packet network simulator.
//
// Stand-in for the paper's NS2 setup (Sec. VII): messages are chopped into
// MTU-sized packets, every (undirected) link transmits one packet at a time
// per direction at the configured bandwidth, packets queue FIFO behind the
// link, and each hop adds the propagation latency. Routing is hop-count
// shortest path (all links identical). Protocol rounds are synchronous: the
// packets of round k enter the network only after every packet of round k-1
// has been delivered — matching how the frameworks actually block on their
// predecessors' messages.
//
// This intentionally simplifies TCP to deterministic FIFO serialization: the
// phenomenon Fig. 3(b) demonstrates (many small rounds lose to few bulk
// transfers once latency and congestion matter) is a property of the
// bandwidth/latency arithmetic, not of TCP dynamics. See DESIGN.md.
//
// Edge cases pinned by tests/net_test.cpp: a zero-byte message still costs
// one header-only packet (TCP never sends a naked payload of zero frames
// for free); same-time packet events drain in FIFO submission order; and a
// transfer whose endpoints map to the same node is co-located (delivered
// instantly, no packets).
#pragma once

#include "net/topology.h"
#include "runtime/comm.h"
#include "runtime/trace.h"

namespace ppgr::net {

struct SimulatorConfig {
  double bandwidth_bps = 2e6;  // 2 Mbps, per direction (duplex)
  double latency_s = 0.05;     // 50 ms per hop
  std::size_t mtu_bytes = 1500;
  std::size_t header_bytes = 40;  // IP+TCP header per packet
};

struct SimulationResult {
  double total_seconds = 0.0;
  std::vector<double> round_seconds;  // duration of each logical round
  std::size_t packets = 0;
};

/// replay_detailed(): the summary plus one timing record per input
/// transfer, in input order (runtime::FlowTiming — see runtime/comm.h for
/// the segment semantics). Times are absolute simulation seconds.
struct DetailedSimulationResult {
  SimulationResult summary;
  std::vector<runtime::FlowTiming> timings;
};

class Simulator {
 public:
  Simulator(const Topology& topo, SimulatorConfig config);

  /// Replays a recorded protocol trace. node_of[party] maps party ids to
  /// topology nodes (must be injective up to co-location; transfers between
  /// parties on the same node are free).
  [[nodiscard]] SimulationResult replay(
      std::span<const runtime::Transfer> trace,
      std::span<const std::size_t> node_of);

  /// Like replay(), but also decomposes every transfer's delivery into
  /// queueing / transmission / propagation segments. This is what
  /// net::Router uses to stamp runtime::CommRegistry flows.
  [[nodiscard]] DetailedSimulationResult replay_detailed(
      std::span<const runtime::Transfer> trace,
      std::span<const std::size_t> node_of);

  /// Convenience: one message, returns delivery latency from an idle start
  /// (0 when src_node == dst_node).
  [[nodiscard]] double send_once(std::size_t src_node, std::size_t dst_node,
                                 std::size_t bytes);

  [[nodiscard]] const SimulatorConfig& config() const { return cfg_; }

 private:
  const Topology& topo_;
  SimulatorConfig cfg_;
};

}  // namespace ppgr::net

#include "net/fault.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

namespace ppgr::net {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kTamper:
      return "tamper";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kCrash:
      return "crash";
  }
  return "?";
}

const char* to_string(ChannelErrorKind kind) {
  switch (kind) {
    case ChannelErrorKind::kBadFrame:
      return "bad-frame";
    case ChannelErrorKind::kTimeout:
      return "timeout";
    case ChannelErrorKind::kGiveUp:
      return "give-up";
    case ChannelErrorKind::kPeerDead:
      return "peer-dead";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Plan spec parsing.

namespace {

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("parse_fault_plan: " + why + " in \"" + spec +
                              "\"");
}

double parse_prob(const std::string& spec, const std::string& key,
                  const std::string& value) {
  std::size_t used = 0;
  double p = 0.0;
  try {
    p = std::stod(value, &used);
  } catch (const std::exception&) {
    bad_spec(spec, "non-numeric value for " + key);
  }
  if (used != value.size()) bad_spec(spec, "trailing junk after " + key);
  if (p < 0.0 || p > 1.0) bad_spec(spec, key + " outside [0,1]");
  return p;
}

double parse_seconds(const std::string& spec, const std::string& key,
                     const std::string& value) {
  std::size_t used = 0;
  double s = 0.0;
  try {
    s = std::stod(value, &used);
  } catch (const std::exception&) {
    bad_spec(spec, "non-numeric value for " + key);
  }
  if (used != value.size()) bad_spec(spec, "trailing junk after " + key);
  if (s < 0.0) bad_spec(spec, key + " must be >= 0");
  return s;
}

std::uint64_t parse_u64(const std::string& spec, const std::string& key,
                        const std::string& value) {
  if (value.empty()) bad_spec(spec, "empty value for " + key);
  std::uint64_t v = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') bad_spec(spec, "non-integer value for " + key);
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

FaultPlanConfig parse_fault_plan(const std::string& spec) {
  FaultPlanConfig cfg;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) bad_spec(spec, "missing '=' in \"" + item + "\"");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      cfg.seed = parse_u64(spec, key, value);
    } else if (key == "drop") {
      cfg.drop = parse_prob(spec, key, value);
    } else if (key == "duplicate" || key == "dup") {
      cfg.duplicate = parse_prob(spec, key, value);
    } else if (key == "reorder") {
      cfg.reorder = parse_prob(spec, key, value);
    } else if (key == "corrupt") {
      cfg.corrupt = parse_prob(spec, key, value);
    } else if (key == "tamper") {
      cfg.tamper = parse_prob(spec, key, value);
    } else if (key == "delay") {
      cfg.delay = parse_prob(spec, key, value);
    } else if (key == "delay_s") {
      cfg.delay_spike_s = parse_seconds(spec, key, value);
    } else if (key == "phase") {
      const std::uint64_t p = parse_u64(spec, key, value);
      if (p > 3) bad_spec(spec, "phase must be 0 (all), 1, 2 or 3");
      cfg.only_phase = static_cast<int>(p);
    } else if (key == "retries") {
      cfg.max_retries = static_cast<std::size_t>(parse_u64(spec, key, value));
    } else if (key == "backoff") {
      cfg.backoff_base_s = parse_seconds(spec, key, value);
    } else if (key == "deadline") {
      cfg.deadline_s = parse_seconds(spec, key, value);
    } else if (key == "crash") {
      const std::size_t at = value.find('@');
      if (at == std::string::npos)
        bad_spec(spec, "crash wants <party>@<phase>");
      const std::uint64_t party = parse_u64(spec, key, value.substr(0, at));
      const std::uint64_t phase = parse_u64(spec, key, value.substr(at + 1));
      if (phase < 1 || phase > 3)
        bad_spec(spec, "crash phase must be 1, 2 or 3");
      cfg.crashes.push_back(
          CrashPoint{static_cast<std::size_t>(party),
                     static_cast<runtime::Phase>(phase)});
    } else {
      bad_spec(spec, "unknown key \"" + key + "\"");
    }
  }
  return cfg;
}

// ---------------------------------------------------------------------------
// FaultPlan.

namespace {

/// Packs the decision coordinates into the 64-bit stream id:
/// kind:8 | round:16 | src:8 | dst:8 | msg:16 | attempt:8. Coordinates are
/// masked to their field width, so extremely long runs wrap deterministically
/// instead of colliding unpredictably.
std::uint64_t fault_stream_id(FaultKind kind, std::size_t round,
                              std::size_t src, std::size_t dst,
                              std::size_t msg_index, std::size_t attempt) {
  return (static_cast<std::uint64_t>(kind) << 56) |
         (static_cast<std::uint64_t>(round & 0xffffu) << 40) |
         (static_cast<std::uint64_t>(src & 0xffu) << 32) |
         (static_cast<std::uint64_t>(dst & 0xffu) << 24) |
         (static_cast<std::uint64_t>(msg_index & 0xffffu) << 8) |
         static_cast<std::uint64_t>(attempt & 0xffu);
}

/// Uniform double in [0,1) from the stream's first 53 bits — the draw (and
/// thus the whole fault schedule) is a pure function of the stream id.
bool fires(const mpz::StreamFamily& family, FaultKind kind, std::size_t round,
           std::size_t src, std::size_t dst, std::size_t msg_index,
           std::size_t attempt, double p, std::uint64_t* entropy = nullptr) {
  if (p <= 0.0) return false;
  mpz::ChaChaRng rng =
      family.stream(fault_stream_id(kind, round, src, dst, msg_index, attempt));
  const double u =
      static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53;
  if (entropy != nullptr) *entropy = rng.next_u64();
  return u < p;
}

}  // namespace

FaultPlan::FaultPlan(FaultPlanConfig cfg)
    : cfg_(std::move(cfg)),
      family_([&] {
        mpz::ChaChaRng parent{cfg_.seed};
        return mpz::StreamFamily{parent};
      }()) {}

bool FaultPlan::active_in(runtime::Phase phase) const {
  if (cfg_.only_phase == 0) return true;
  return static_cast<int>(phase) == cfg_.only_phase;
}

FaultDecision FaultPlan::decide(runtime::Phase phase, std::size_t round,
                                std::size_t src, std::size_t dst,
                                std::size_t msg_index,
                                std::size_t attempt) const {
  FaultDecision d;
  if (!active_in(phase)) return d;
  d.drop = fires(family_, FaultKind::kDrop, round, src, dst, msg_index,
                 attempt, cfg_.drop);
  d.duplicate = fires(family_, FaultKind::kDuplicate, round, src, dst,
                      msg_index, attempt, cfg_.duplicate);
  d.reorder = fires(family_, FaultKind::kReorder, round, src, dst, msg_index,
                    attempt, cfg_.reorder);
  std::uint64_t corrupt_entropy = 0;
  d.corrupt = fires(family_, FaultKind::kCorrupt, round, src, dst, msg_index,
                    attempt, cfg_.corrupt, &corrupt_entropy);
  std::uint64_t tamper_entropy = 0;
  d.tamper = fires(family_, FaultKind::kTamper, round, src, dst, msg_index,
                   attempt, cfg_.tamper, &tamper_entropy);
  d.delay = fires(family_, FaultKind::kDelay, round, src, dst, msg_index,
                  attempt, cfg_.delay);
  // Raw entropy; the Router reduces it modulo the payload bit count. Tamper
  // takes precedence over corrupt when both fire on one attempt.
  d.flip_bit = static_cast<std::size_t>(d.tamper ? tamper_entropy
                                                 : corrupt_entropy);
  return d;
}

std::vector<std::size_t> FaultPlan::crashes_at(runtime::Phase phase) const {
  std::vector<std::size_t> parties;
  for (const CrashPoint& c : cfg_.crashes)
    if (c.phase == phase) parties.push_back(c.party);
  std::sort(parties.begin(), parties.end());
  parties.erase(std::unique(parties.begin(), parties.end()), parties.end());
  return parties;
}

double FaultPlan::effective_deadline(double link_latency_s) const {
  if (cfg_.deadline_s > 0.0) return cfg_.deadline_s;
  // One round trip per allowed attempt plus the full backoff ladder
  // (backoff doubles per retry: base * (2^retries - 1)).
  const double attempts = static_cast<double>(cfg_.max_retries + 1);
  double backoff_total = 0.0;
  double step = cfg_.backoff_base_s;
  for (std::size_t i = 0; i < cfg_.max_retries; ++i) {
    backoff_total += step;
    step *= 2.0;
  }
  return attempts * 2.0 * link_latency_s + backoff_total;
}

// ---------------------------------------------------------------------------
// CRC32 + frame codec.

namespace {

std::uint32_t load_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void store_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  // Bitwise CRC-32 (IEEE 802.3, reflected 0xEDB88320). Frames are small and
  // the path only runs under an installed fault plan, so no table needed.
  std::uint32_t crc = 0xffffffffu;
  for (const std::uint8_t byte : data) {
    crc ^= byte;
    for (int i = 0; i < 8; ++i)
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
  }
  return crc ^ 0xffffffffu;
}

std::vector<std::uint8_t> encode_frame(std::uint32_t seq,
                                       std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out(kFrameHeaderBytes + payload.size());
  store_u32(out.data(),
            static_cast<std::uint32_t>(kFrameHeaderBytes + payload.size()));
  store_u32(out.data() + 4, seq);
  store_u32(out.data() + 8, crc32(payload));
  std::memcpy(out.data() + kFrameHeaderBytes, payload.data(), payload.size());
  return out;
}

Frame decode_frame(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kFrameHeaderBytes)
    throw ChannelError(ChannelErrorKind::kBadFrame, 0, 0, 0,
                       "decode_frame: truncated frame (" +
                           std::to_string(bytes.size()) + " bytes < " +
                           std::to_string(kFrameHeaderBytes) +
                           "-byte header)");
  const std::uint32_t declared = load_u32(bytes.data());
  if (declared != bytes.size())
    throw ChannelError(
        ChannelErrorKind::kBadFrame, 0, 0, 0,
        "decode_frame: length field " + std::to_string(declared) +
            " disagrees with buffer size " + std::to_string(bytes.size()) +
            (declared < bytes.size() ? " (over-long)" : " (truncated)"));
  Frame frame;
  frame.seq = load_u32(bytes.data() + 4);
  frame.payload.assign(bytes.begin() + kFrameHeaderBytes, bytes.end());
  frame.crc_ok = crc32(frame.payload) == load_u32(bytes.data() + 8);
  return frame;
}

// ---------------------------------------------------------------------------
// Report export.

std::string FaultReport::to_json() const {
  std::string out;
  char buf[256];
  out += "{\n  \"schema\": \"ppgr.fault.v1\",\n  \"plan\": {\n";
  std::snprintf(buf, sizeof(buf), "    \"seed\": %" PRIu64 ",\n", plan.seed);
  out += buf;
  const auto prob = [&](const char* name, double v, bool comma = true) {
    std::snprintf(buf, sizeof(buf), "    \"%s\": %.6f%s\n", name, v,
                  comma ? "," : "");
    out += buf;
  };
  prob("drop", plan.drop);
  prob("duplicate", plan.duplicate);
  prob("reorder", plan.reorder);
  prob("corrupt", plan.corrupt);
  prob("tamper", plan.tamper);
  prob("delay", plan.delay);
  prob("delay_spike_s", plan.delay_spike_s);
  std::snprintf(buf, sizeof(buf),
                "    \"only_phase\": %d,\n    \"max_retries\": %zu,\n",
                plan.only_phase, plan.max_retries);
  out += buf;
  prob("backoff_base_s", plan.backoff_base_s);
  prob("deadline_s", plan.deadline_s);
  out += "    \"crashes\": [";
  bool first = true;
  for (const CrashPoint& c : plan.crashes) {
    std::snprintf(buf, sizeof(buf), "%s{\"party\": %zu, \"phase\": \"%s\"}",
                  first ? "" : ", ", c.party, runtime::phase_name(c.phase));
    out += buf;
    first = false;
  }
  out += "]\n  },\n  \"counters\": {\n";
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    std::snprintf(buf, sizeof(buf), "    \"injected_%s\": %" PRIu64 ",\n",
                  to_string(static_cast<FaultKind>(k)), stats.injected[k]);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "    \"retransmits\": %" PRIu64 ",\n"
                "    \"crc_detected\": %" PRIu64 ",\n"
                "    \"duplicates_dropped\": %" PRIu64 ",\n"
                "    \"reorders_healed\": %" PRIu64 ",\n"
                "    \"timeouts\": %" PRIu64 ",\n"
                "    \"giveups\": %" PRIu64 "\n  },\n",
                stats.retransmits, stats.crc_detected,
                stats.duplicates_dropped, stats.reorders_healed,
                stats.timeouts, stats.giveups);
  out += buf;
  out += "  \"events\": [";
  first = true;
  for (const FaultEvent& e : events) {
    out += first ? "\n" : ",\n";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "    {\"kind\": \"%s\", \"round\": %zu, \"src\": %zu, "
                  "\"dst\": %zu, \"attempt\": %zu}",
                  to_string(e.kind), e.round, e.src, e.dst, e.attempt);
    out += buf;
  }
  out += events.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace ppgr::net

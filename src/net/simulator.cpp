#include "net/simulator.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace ppgr::net {

namespace {

struct PacketEvent {
  double time;          // arrival at the head of its next link
  std::uint64_t seq;    // submission order — FIFO tie-break for equal times
  std::size_t packet;   // packet index
  std::size_t hop;      // index into the packet's path
  bool operator>(const PacketEvent& o) const {
    if (time != o.time) return time > o.time;
    return seq > o.seq;
  }
};

struct Packet {
  const std::vector<std::size_t>* path;  // edge indices
  std::size_t src;                       // traversal origin (fixes direction)
  std::size_t bytes;
  std::size_t transfer;                  // index into the round's transfers
};

}  // namespace

Simulator::Simulator(const Topology& topo, SimulatorConfig config)
    : topo_(topo), cfg_(config) {
  if (cfg_.bandwidth_bps <= 0 || cfg_.latency_s < 0 ||
      cfg_.mtu_bytes <= cfg_.header_bytes)
    throw std::invalid_argument("Simulator: bad config");
}

SimulationResult Simulator::replay(std::span<const runtime::Transfer> trace,
                                   std::span<const std::size_t> node_of) {
  return replay_detailed(trace, node_of).summary;
}

DetailedSimulationResult Simulator::replay_detailed(
    std::span<const runtime::Transfer> trace,
    std::span<const std::size_t> node_of) {
  for (const auto& t : trace) {
    if (t.src >= node_of.size() || t.dst >= node_of.size())
      throw std::invalid_argument("Simulator::replay: party id out of range");
  }

  // Group transfers by round (rounds may be sparse).
  std::size_t max_round = 0;
  for (const auto& t : trace) max_round = std::max(max_round, t.round);
  std::vector<std::vector<std::size_t>> by_round(max_round + 1);
  for (std::size_t i = 0; i < trace.size(); ++i)
    by_round[trace[i].round].push_back(i);

  DetailedSimulationResult result;
  result.timings.resize(trace.size());
  // Per-direction link occupancy: 2 entries per undirected edge.
  std::vector<double> link_free(2 * topo_.edges().size(), 0.0);
  double clock = 0.0;

  for (const auto& round : by_round) {
    if (round.empty()) {
      result.summary.round_seconds.push_back(0.0);
      continue;
    }
    // Round barrier: reset link availability to the round start (everything
    // from the previous round has drained).
    std::fill(link_free.begin(), link_free.end(), clock);

    // Build packets.
    std::vector<Packet> packets;
    std::priority_queue<PacketEvent, std::vector<PacketEvent>,
                        std::greater<PacketEvent>>
        events;
    std::uint64_t seq = 0;
    for (const std::size_t ti : round) {
      const runtime::Transfer& t = trace[ti];
      runtime::FlowTiming& timing = result.timings[ti];
      timing.send_s = clock;
      const std::size_t src_node = node_of[t.src];
      const std::size_t dst_node = node_of[t.dst];
      if (src_node == dst_node) {
        // Co-located parties: delivered instantly, no packets.
        timing.deliver_s = clock;
        continue;
      }
      const auto& path = topo_.path(src_node, dst_node);
      const std::size_t payload = cfg_.mtu_bytes - cfg_.header_bytes;
      // A zero-byte message still travels as one header-only packet.
      const std::size_t n_packets =
          std::max<std::size_t>(1, (t.bytes + payload - 1) / payload);
      std::size_t wire_bytes = 0;
      for (std::size_t p = 0; p < n_packets; ++p) {
        const std::size_t body =
            std::min(payload, t.bytes - std::min(t.bytes, p * payload)) +
            cfg_.header_bytes;
        wire_bytes += body;
        packets.push_back(Packet{&path, src_node, body, ti});
        events.push(PacketEvent{clock, seq++, packets.size() - 1, 0});
      }
      // Pure segments, independent of contention: one-link serialization of
      // the whole message and per-hop propagation. Queueing is whatever the
      // event simulation adds on top.
      timing.tx_s = static_cast<double>(wire_bytes) * 8.0 / cfg_.bandwidth_bps;
      timing.prop_s = static_cast<double>(path.size()) * cfg_.latency_s;
    }
    result.summary.packets += packets.size();

    double round_end = clock;
    while (!events.empty()) {
      const PacketEvent ev = events.top();
      events.pop();
      Packet& pkt = packets[ev.packet];
      const std::size_t edge_idx = (*pkt.path)[ev.hop];
      const Edge& e = topo_.edges()[edge_idx];
      // Determine traversal direction by walking the path from the packet's
      // source: the node we're currently at.
      std::size_t at = pkt.src;
      for (std::size_t h = 0; h < ev.hop; ++h) {
        const Edge& prev = topo_.edges()[(*pkt.path)[h]];
        at = (prev.a == at) ? prev.b : prev.a;
      }
      const bool forward = (e.a == at);
      double& free_at = link_free[2 * edge_idx + (forward ? 0 : 1)];
      const double tx = static_cast<double>(pkt.bytes) * 8.0 / cfg_.bandwidth_bps;
      const double depart = std::max(ev.time, free_at);
      free_at = depart + tx;
      const double arrive = depart + tx + cfg_.latency_s;
      if (ev.hop + 1 == pkt.path->size()) {
        runtime::FlowTiming& timing = result.timings[pkt.transfer];
        timing.deliver_s = std::max(timing.deliver_s, arrive);
        round_end = std::max(round_end, arrive);
      } else {
        events.push(PacketEvent{arrive, seq++, ev.packet, ev.hop + 1});
      }
    }
    for (const std::size_t ti : round) {
      runtime::FlowTiming& timing = result.timings[ti];
      timing.queue_s = std::max(
          0.0, (timing.deliver_s - timing.send_s) - timing.tx_s -
                   timing.prop_s);
    }
    result.summary.round_seconds.push_back(round_end - clock);
    clock = round_end;
  }
  result.summary.total_seconds = clock;
  return result;
}

double Simulator::send_once(std::size_t src_node, std::size_t dst_node,
                            std::size_t bytes) {
  const runtime::Transfer t{0, 0, 1, bytes};
  const std::size_t nodes[] = {src_node, dst_node};
  return replay(std::span{&t, 1}, nodes).total_seconds;
}

}  // namespace ppgr::net

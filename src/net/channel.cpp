#include "net/channel.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "net/transport.h"

namespace ppgr::net {

namespace {

Topology complete_graph(std::size_t nodes) {
  std::vector<Edge> edges;
  edges.reserve(nodes * (nodes - 1) / 2);
  for (std::size_t a = 0; a < nodes; ++a)
    for (std::size_t b = a + 1; b < nodes; ++b) edges.push_back(Edge{a, b});
  return Topology{nodes, std::move(edges)};
}

std::string link_str(std::size_t src, std::size_t dst) {
  return "P" + std::to_string(src) + "->P" + std::to_string(dst);
}

}  // namespace

Router::Router(std::size_t parties, runtime::TraceRecorder& trace,
               runtime::CommRegistry* comm)
    : Router(parties, trace, comm, Config{}) {}

Router::Router(std::size_t parties, runtime::TraceRecorder& trace,
               runtime::CommRegistry* comm, Config cfg)
    : parties_(parties),
      trace_(trace),
      comm_(comm),
      owned_topo_(cfg.topo != nullptr
                      ? std::nullopt
                      : std::optional<Topology>{complete_graph(parties)}),
      topo_(cfg.topo != nullptr ? cfg.topo : &*owned_topo_),
      node_of_(cfg.topo != nullptr ? std::move(cfg.node_of)
                                   : std::vector<std::size_t>{}),
      sim_(*topo_, cfg.sim),
      mailboxes_(parties * parties),
      progress_(cfg.progress),
      flight_(cfg.flight),
      transport_(cfg.transport),
      start_(std::chrono::steady_clock::now()) {
  if (parties_ < 2) throw std::invalid_argument("Router: need >= 2 parties");
  if (transport_ != nullptr && cfg.faults != nullptr && cfg.faults->enabled())
    throw std::invalid_argument(
        "Router: fault injection requires the in-process simulator "
        "transport (the retry ladder is a mailbox construct)");
  if (node_of_.empty()) {
    node_of_.resize(parties_);
    for (std::size_t p = 0; p < parties_; ++p) node_of_[p] = p;
  }
  if (node_of_.size() != parties_)
    throw std::invalid_argument("Router: node_of size != parties");
  for (const std::size_t node : node_of_)
    if (node >= topo_->nodes())
      throw std::invalid_argument("Router: node_of entry out of range");
  // A disabled plan is indistinguishable from no plan: every fault branch
  // below keys off faults_ != nullptr.
  if (cfg.faults != nullptr && cfg.faults->enabled()) {
    faults_ = cfg.faults;
    deadline_s_ = faults_->effective_deadline(cfg.sim.latency_s);
    dead_.assign(parties_, 0);
    tx_seq_.assign(parties_ * parties_, 0);
    rx_seq_.assign(parties_ * parties_, 0);
    msg_ctr_.assign(parties_ * parties_, 0);
    failures_.resize(parties_ * parties_);
  }
}

void Router::set_phase(runtime::Phase p) {
  if (comm_ != nullptr) comm_->set_phase(p);
  phase_ = p;
  if (progress_ != nullptr) progress_->advance(phase_, round_index_);
  if (flight_ != nullptr)
    flight_->record(runtime::FlightEventKind::kPhase, phase_, 0,
                    static_cast<std::uint32_t>(round_index_));
  if (faults_ == nullptr) return;
  for (const std::size_t party : faults_->crashes_at(p)) {
    if (party >= parties_ || dead_[party] != 0) continue;
    dead_[party] = 1;
    stats_.injected[static_cast<std::size_t>(FaultKind::kCrash)]++;
    events_.push_back(FaultEvent{FaultKind::kCrash, round_index_, party,
                                 party, 0});
    if (flight_ != nullptr)
      flight_->record(runtime::FlightEventKind::kInject, phase_,
                      static_cast<std::uint16_t>(FaultKind::kCrash),
                      static_cast<std::uint32_t>(party),
                      static_cast<std::uint32_t>(party));
  }
}

void Router::note(FaultKind kind, std::size_t src, std::size_t dst,
                  std::size_t attempt) {
  stats_.injected[static_cast<std::size_t>(kind)]++;
  events_.push_back(FaultEvent{kind, round_index_, src, dst, attempt});
  if (flight_ != nullptr)
    flight_->record(runtime::FlightEventKind::kInject, phase_,
                    static_cast<std::uint16_t>(kind),
                    static_cast<std::uint32_t>(src),
                    static_cast<std::uint32_t>(dst), attempt);
}

void Router::account(std::size_t src, std::size_t dst, std::size_t bytes,
                     double extra_delay_s) {
  if (src >= parties_ || dst >= parties_)
    throw std::invalid_argument("Router: party id out of range");
  trace_.record(src, dst, bytes);
  if (flight_ != nullptr)
    flight_->record(runtime::FlightEventKind::kSend, phase_, 0,
                    static_cast<std::uint32_t>(src),
                    static_cast<std::uint32_t>(dst), bytes);
  if (comm_ != nullptr) {
    comm_->record(src, dst, bytes);
    round_.push_back(runtime::Transfer{0, src, dst, bytes});
    if (faults_ != nullptr) round_extra_.push_back(extra_delay_s);
  }
}

std::deque<std::shared_ptr<const std::vector<std::uint8_t>>>&
Router::mailbox(std::size_t src, std::size_t dst) {
  return mailboxes_[src * parties_ + dst];
}

void Router::send(std::size_t src, std::size_t dst,
                  std::shared_ptr<const std::vector<std::uint8_t>> payload) {
  if (payload == nullptr) throw std::invalid_argument("Router: null payload");
  if (faults_ != nullptr) {
    faulted_send(src, dst, std::move(payload));
    return;
  }
  if (transport_ != nullptr && !transport_->local(dst)) {
    // Account first (the trace/registry view is "bytes put on the wire"),
    // then hand the payload to the transport, which frames and ships it.
    account(src, dst, payload->size());
    transport_->send(src, dst, *payload);
    return;
  }
  account(src, dst, payload->size());
  mailbox(src, dst).push_back(std::move(payload));
  ++pending_;
}

void Router::faulted_send(
    std::size_t src, std::size_t dst,
    std::shared_ptr<const std::vector<std::uint8_t>> payload) {
  if (src >= parties_ || dst >= parties_)
    throw std::invalid_argument("Router: party id out of range");
  const std::size_t link = src * parties_ + dst;
  // A crashed sender is silent: its peers discover the crash when their
  // receive finds nothing on the link (ChannelError kPeerDead).
  if (dead_[src] != 0) return;
  const std::uint32_t seq = tx_seq_[link]++;
  const std::uint32_t msg = msg_ctr_[link]++;
  auto& box = mailbox(src, dst);
  if (dead_[dst] != 0) {
    // The wire still carries the bytes; nobody acknowledges them.
    account(src, dst, kFrameHeaderBytes + payload->size());
    failures_[link].push_back(
        FailedSend{seq, ChannelErrorKind::kPeerDead, round_index_});
    return;
  }
  const std::size_t framed_bytes = kFrameHeaderBytes + payload->size();
  double elapsed_s = 0.0;
  double backoff_s = faults_->config().backoff_base_s;
  for (std::size_t attempt = 0;; ++attempt) {
    const FaultDecision d =
        faults_->decide(phase_, round_index_, src, dst, msg, attempt);
    if (attempt > 0) {
      stats_.retransmits++;
      if (flight_ != nullptr)
        flight_->record(runtime::FlightEventKind::kRetry, phase_, 0,
                        static_cast<std::uint32_t>(src),
                        static_cast<std::uint32_t>(dst), attempt);
    }
    if (d.drop || d.corrupt) {
      // The attempt consumed wire bytes either way; a corrupted frame also
      // reaches the mailbox, where the receiver's CRC check discards it.
      account(src, dst, framed_bytes, d.delay ? faults_->config().delay_spike_s
                                              : 0.0);
      if (d.delay) note(FaultKind::kDelay, src, dst, attempt);
      if (d.drop) {
        note(FaultKind::kDrop, src, dst, attempt);
      } else {
        note(FaultKind::kCorrupt, src, dst, attempt);
        std::vector<std::uint8_t> framed = encode_frame(seq, *payload);
        const std::size_t bits = payload->size() * 8;
        if (bits > 0) {
          const std::size_t bit = d.flip_bit % bits;
          framed[kFrameHeaderBytes + bit / 8] ^=
              static_cast<std::uint8_t>(1u << (bit % 8));
        } else {
          framed[8] ^= 1u;  // no payload bits: break the CRC field itself
        }
        box.push_back(std::make_shared<const std::vector<std::uint8_t>>(
            std::move(framed)));
        ++pending_;
      }
      // Ladder advance: one simulated round trip (the receiver's missing
      // ack) plus the exponential backoff before the retransmit.
      elapsed_s += 2.0 * sim_.config().latency_s;
      if (attempt >= faults_->config().max_retries) {
        stats_.giveups++;
        failures_[link].push_back(
            FailedSend{seq, ChannelErrorKind::kGiveUp, round_index_});
        return;
      }
      elapsed_s += backoff_s;
      backoff_s *= 2.0;
      if (elapsed_s > deadline_s_) {
        stats_.timeouts++;
        failures_[link].push_back(
            FailedSend{seq, ChannelErrorKind::kTimeout, round_index_});
        return;
      }
      continue;
    }
    // Delivered attempt (possibly tampered / duplicated / reordered /
    // delayed).
    std::vector<std::uint8_t> framed;
    if (d.tamper && !payload->empty()) {
      std::vector<std::uint8_t> bad = *payload;
      const std::size_t bit = d.flip_bit % (bad.size() * 8);
      bad[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      framed = encode_frame(seq, bad);  // CRC recomputed: undetectable
      note(FaultKind::kTamper, src, dst, attempt);
    } else {
      framed = encode_frame(seq, *payload);
    }
    const double extra =
        d.delay ? faults_->config().delay_spike_s : 0.0;
    if (d.delay) note(FaultKind::kDelay, src, dst, attempt);
    account(src, dst, framed.size(), extra);
    auto frame_ptr =
        std::make_shared<const std::vector<std::uint8_t>>(std::move(framed));
    box.push_back(frame_ptr);
    ++pending_;
    if (d.duplicate) {
      note(FaultKind::kDuplicate, src, dst, attempt);
      account(src, dst, frame_ptr->size(), extra);
      box.push_back(frame_ptr);
      ++pending_;
    }
    if (d.reorder && box.size() >= 2) {
      note(FaultKind::kReorder, src, dst, attempt);
      std::swap(box[box.size() - 1], box[box.size() - 2]);
    }
    return;
  }
}

void Router::send(std::size_t src, std::size_t dst,
                  std::vector<std::uint8_t> bytes) {
  send(src, dst,
       std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes)));
}

void Router::transmit(std::size_t src, std::size_t dst, std::size_t bytes) {
  if (faults_ != nullptr) {
    if (src < parties_ && dead_[src] != 0) return;  // crashed sender: silent
    if (src < parties_ && dst < parties_) {
      const FaultDecision d = faults_->decide(
          phase_, round_index_, src, dst, msg_ctr_[src * parties_ + dst]++, 0);
      // Accounting-only messages have no retained payload to lose or
      // corrupt; only the delay spike applies.
      if (d.delay) {
        note(FaultKind::kDelay, src, dst, 0);
        account(src, dst, bytes, faults_->config().delay_spike_s);
        return;
      }
    }
  }
  account(src, dst, bytes);
}

void Router::absorb(runtime::CommBuffer& buf) {
  for (const auto& m : buf.staged()) {
    if (m.payload != nullptr) {
      send(m.src, m.dst, m.payload);
    } else {
      transmit(m.src, m.dst, m.bytes);
    }
  }
  buf.clear();
}

std::shared_ptr<const std::vector<std::uint8_t>> Router::receive(
    std::size_t src, std::size_t dst) {
  if (src >= parties_ || dst >= parties_)
    throw std::invalid_argument("Router: party id out of range");
  if (faults_ != nullptr) return faulted_receive(src, dst);
  if (transport_ != nullptr && !transport_->local(src)) {
    try {
      auto payload = std::make_shared<const std::vector<std::uint8_t>>(
          transport_->receive(src, dst));
      // Inbound accounting: in a one-party-per-process run each process
      // records both directions of its own links, so its trace and comm
      // exports are self-contained.
      account(src, dst, payload->size());
      return payload;
    } catch (const ChannelError& e) {
      if (flight_ != nullptr)
        flight_->record(runtime::FlightEventKind::kChannelError, phase_,
                        static_cast<std::uint16_t>(e.kind()),
                        static_cast<std::uint32_t>(src),
                        static_cast<std::uint32_t>(dst));
      throw;
    }
  }
  auto& box = mailbox(src, dst);
  if (box.empty())
    throw std::logic_error("Router::receive: mailbox empty");
  auto payload = std::move(box.front());
  box.pop_front();
  --pending_;
  return payload;
}

std::shared_ptr<const std::vector<std::uint8_t>> Router::faulted_receive(
    std::size_t src, std::size_t dst) {
  const std::size_t link = src * parties_ + dst;
  auto& box = mailbox(src, dst);
  const std::uint32_t want = rx_seq_[link];
  // A permanently failed send consumes its sequence slot with a typed
  // error, so later messages on the link keep their ordering.
  if (!failures_[link].empty() && failures_[link].front().seq == want) {
    const FailedSend failed = failures_[link].front();
    failures_[link].pop_front();
    rx_seq_[link] = want + 1;
    if (flight_ != nullptr)
      flight_->record(runtime::FlightEventKind::kChannelError, phase_,
                      static_cast<std::uint16_t>(failed.kind),
                      static_cast<std::uint32_t>(src),
                      static_cast<std::uint32_t>(dst), want);
    throw ChannelError(
        failed.kind, src, dst, failed.round,
        "Router::receive: " + link_str(src, dst) + " message #" +
            std::to_string(want) + " lost (" + to_string(failed.kind) +
            (failed.kind == ChannelErrorKind::kPeerDead
                 ? ": peer crashed)"
                 : ", retransmit budget/deadline exhausted)"));
  }
  // Scan the mailbox for the expected sequence number, discarding CRC
  // rejects and stale duplicates, skipping (and preserving) frames from the
  // future.
  std::size_t skipped_future = 0;
  for (std::size_t i = 0; i < box.size();) {
    Frame frame = decode_frame(*box[i]);
    if (!frame.crc_ok) {
      stats_.crc_detected++;
      box.erase(box.begin() + static_cast<std::ptrdiff_t>(i));
      --pending_;
      continue;
    }
    if (frame.seq < want) {
      stats_.duplicates_dropped++;
      box.erase(box.begin() + static_cast<std::ptrdiff_t>(i));
      --pending_;
      continue;
    }
    if (frame.seq > want) {
      ++skipped_future;
      ++i;
      continue;
    }
    // Found it. Healing a reorder means it was not the first live frame.
    if (skipped_future > 0) stats_.reorders_healed++;
    box.erase(box.begin() + static_cast<std::ptrdiff_t>(i));
    --pending_;
    rx_seq_[link] = want + 1;
    // Purge trailing duplicates of this (or earlier) messages so a healed
    // run still drains to pending() == 0.
    for (std::size_t j = 0; j < box.size();) {
      const Frame f = decode_frame(*box[j]);
      if (f.crc_ok && f.seq > want) {
        ++j;
        continue;
      }
      if (f.crc_ok) stats_.duplicates_dropped++;
      else stats_.crc_detected++;
      box.erase(box.begin() + static_cast<std::ptrdiff_t>(j));
      --pending_;
    }
    return std::make_shared<const std::vector<std::uint8_t>>(
        std::move(frame.payload));
  }
  if (dead_[src] != 0) {
    if (flight_ != nullptr)
      flight_->record(runtime::FlightEventKind::kChannelError, phase_,
                      static_cast<std::uint16_t>(ChannelErrorKind::kPeerDead),
                      static_cast<std::uint32_t>(src),
                      static_cast<std::uint32_t>(dst));
    throw ChannelError(ChannelErrorKind::kPeerDead, src, dst, round_index_,
                       "Router::receive: " + link_str(src, dst) +
                           " peer P" + std::to_string(src) + " crashed");
  }
  throw std::logic_error("Router::receive: mailbox empty");
}

void Router::next_round() {
  if (comm_ != nullptr && transport_ != nullptr) {
    // Real transport: no virtual timeline to replay — stamp every flow of
    // the round with the measured wall clock. All of a round's flows share
    // its open/close instants; the elapsed time counts as queueing, so the
    // deliver - send == tx + prop + queue invariant holds.
    const double now_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
    const double elapsed_s = now_s - round_open_s_;
    std::vector<runtime::FlowTiming> timings(round_.size());
    for (auto& t : timings) {
      t.send_s = round_open_s_;
      t.deliver_s = now_s;
      t.tx_s = 0.0;
      t.prop_s = 0.0;
      t.queue_s = elapsed_s;
    }
    comm_->close_round(timings, elapsed_s);
    round_.clear();
    round_open_s_ = now_s;
    const FaultStats ts = transport_->stats();
    runtime::FaultCounters fc;
    fc.retransmits = ts.retransmits;
    fc.crc_detected = ts.crc_detected;
    fc.timeouts = ts.timeouts;
    fc.giveups = ts.giveups;
    comm_->set_fault_counters(fc);
  } else if (comm_ != nullptr) {
    auto detail = sim_.replay_detailed(round_, node_of_);
    double round_seconds = detail.summary.total_seconds;
    if (faults_ != nullptr) {
      // Injected delay spikes stretch the affected flows' delivery (and the
      // round, if they finish last). The extra time is queueing from the
      // flow's perspective, so the deliver - send == tx + prop + queue
      // invariant is preserved.
      for (std::size_t i = 0; i < detail.timings.size(); ++i) {
        if (round_extra_[i] <= 0.0) continue;
        detail.timings[i].deliver_s += round_extra_[i];
        detail.timings[i].queue_s += round_extra_[i];
        round_seconds = std::max(round_seconds, detail.timings[i].deliver_s);
      }
      round_extra_.clear();
    }
    comm_->close_round(detail.timings, round_seconds);
    round_.clear();
    if (faults_ != nullptr) {
      runtime::FaultCounters fc;
      fc.injected_drop = stats_.injected[static_cast<std::size_t>(FaultKind::kDrop)];
      fc.injected_duplicate =
          stats_.injected[static_cast<std::size_t>(FaultKind::kDuplicate)];
      fc.injected_reorder =
          stats_.injected[static_cast<std::size_t>(FaultKind::kReorder)];
      fc.injected_corrupt =
          stats_.injected[static_cast<std::size_t>(FaultKind::kCorrupt)];
      fc.injected_tamper =
          stats_.injected[static_cast<std::size_t>(FaultKind::kTamper)];
      fc.injected_delay =
          stats_.injected[static_cast<std::size_t>(FaultKind::kDelay)];
      fc.injected_crash =
          stats_.injected[static_cast<std::size_t>(FaultKind::kCrash)];
      fc.retransmits = stats_.retransmits;
      fc.crc_detected = stats_.crc_detected;
      fc.duplicates_dropped = stats_.duplicates_dropped;
      fc.reorders_healed = stats_.reorders_healed;
      fc.timeouts = stats_.timeouts;
      fc.giveups = stats_.giveups;
      comm_->set_fault_counters(fc);
    }
  }
  trace_.next_round();
  ++round_index_;
  if (progress_ != nullptr) progress_->advance(phase_, round_index_);
  if (flight_ != nullptr)
    flight_->record(runtime::FlightEventKind::kRound, phase_, 0, 0, 0,
                    round_index_);
}

std::size_t Router::pending() const { return pending_; }

bool Router::party_dead(std::size_t p) const {
  return faults_ != nullptr && p < parties_ && dead_[p] != 0;
}

std::vector<std::size_t> Router::dead_parties() const {
  std::vector<std::size_t> out;
  if (faults_ == nullptr) return out;
  for (std::size_t p = 0; p < parties_; ++p)
    if (dead_[p] != 0) out.push_back(p);
  return out;
}

FaultReport Router::fault_report() const {
  FaultReport report;
  if (faults_ != nullptr) report.plan = faults_->config();
  report.stats = stats_;
  report.events = events_;
  if (transport_ != nullptr) {
    // Fold the transport's frame-level counters in so ppgr.fault.v1
    // covers real-socket runs (injected[] stays zero: nothing is injected).
    const FaultStats ts = transport_->stats();
    for (std::size_t i = 0; i < kFaultKindCount; ++i)
      report.stats.injected[i] += ts.injected[i];
    report.stats.retransmits += ts.retransmits;
    report.stats.crc_detected += ts.crc_detected;
    report.stats.duplicates_dropped += ts.duplicates_dropped;
    report.stats.reorders_healed += ts.reorders_healed;
    report.stats.timeouts += ts.timeouts;
    report.stats.giveups += ts.giveups;
  }
  return report;
}

}  // namespace ppgr::net

#include "net/channel.h"

#include <stdexcept>

namespace ppgr::net {

namespace {

Topology complete_graph(std::size_t nodes) {
  std::vector<Edge> edges;
  edges.reserve(nodes * (nodes - 1) / 2);
  for (std::size_t a = 0; a < nodes; ++a)
    for (std::size_t b = a + 1; b < nodes; ++b) edges.push_back(Edge{a, b});
  return Topology{nodes, std::move(edges)};
}

}  // namespace

Router::Router(std::size_t parties, runtime::TraceRecorder& trace,
               runtime::CommRegistry* comm)
    : Router(parties, trace, comm, Config{}) {}

Router::Router(std::size_t parties, runtime::TraceRecorder& trace,
               runtime::CommRegistry* comm, Config cfg)
    : parties_(parties),
      trace_(trace),
      comm_(comm),
      owned_topo_(cfg.topo != nullptr
                      ? std::nullopt
                      : std::optional<Topology>{complete_graph(parties)}),
      topo_(cfg.topo != nullptr ? cfg.topo : &*owned_topo_),
      node_of_(cfg.topo != nullptr ? std::move(cfg.node_of)
                                   : std::vector<std::size_t>{}),
      sim_(*topo_, cfg.sim),
      mailboxes_(parties * parties) {
  if (parties_ < 2) throw std::invalid_argument("Router: need >= 2 parties");
  if (node_of_.empty()) {
    node_of_.resize(parties_);
    for (std::size_t p = 0; p < parties_; ++p) node_of_[p] = p;
  }
  if (node_of_.size() != parties_)
    throw std::invalid_argument("Router: node_of size != parties");
  for (const std::size_t node : node_of_)
    if (node >= topo_->nodes())
      throw std::invalid_argument("Router: node_of entry out of range");
}

void Router::set_phase(runtime::Phase p) {
  if (comm_ != nullptr) comm_->set_phase(p);
}

void Router::account(std::size_t src, std::size_t dst, std::size_t bytes) {
  if (src >= parties_ || dst >= parties_)
    throw std::invalid_argument("Router: party id out of range");
  trace_.record(src, dst, bytes);
  if (comm_ != nullptr) {
    comm_->record(src, dst, bytes);
    round_.push_back(runtime::Transfer{0, src, dst, bytes});
  }
}

std::deque<std::shared_ptr<const std::vector<std::uint8_t>>>&
Router::mailbox(std::size_t src, std::size_t dst) {
  return mailboxes_[src * parties_ + dst];
}

void Router::send(std::size_t src, std::size_t dst,
                  std::shared_ptr<const std::vector<std::uint8_t>> payload) {
  if (payload == nullptr) throw std::invalid_argument("Router: null payload");
  account(src, dst, payload->size());
  mailbox(src, dst).push_back(std::move(payload));
  ++pending_;
}

void Router::send(std::size_t src, std::size_t dst,
                  std::vector<std::uint8_t> bytes) {
  send(src, dst,
       std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes)));
}

void Router::transmit(std::size_t src, std::size_t dst, std::size_t bytes) {
  account(src, dst, bytes);
}

void Router::absorb(runtime::CommBuffer& buf) {
  for (const auto& m : buf.staged()) {
    if (m.payload != nullptr) {
      send(m.src, m.dst, m.payload);
    } else {
      transmit(m.src, m.dst, m.bytes);
    }
  }
  buf.clear();
}

std::shared_ptr<const std::vector<std::uint8_t>> Router::receive(
    std::size_t src, std::size_t dst) {
  if (src >= parties_ || dst >= parties_)
    throw std::invalid_argument("Router: party id out of range");
  auto& box = mailbox(src, dst);
  if (box.empty())
    throw std::logic_error("Router::receive: mailbox empty");
  auto payload = std::move(box.front());
  box.pop_front();
  --pending_;
  return payload;
}

void Router::next_round() {
  if (comm_ != nullptr) {
    const auto detail = sim_.replay_detailed(round_, node_of_);
    comm_->close_round(detail.timings, detail.summary.total_seconds);
    round_.clear();
  }
  trace_.next_round();
}

std::size_t Router::pending() const { return pending_; }

}  // namespace ppgr::net

// Network topology for the discrete-event simulator.
//
// The paper's Fig. 3(b) experiment runs on "a randomly generated network"
// built by deleting edges from an 80-node complete graph until 320 remain,
// never disconnecting the graph, each remaining link being a 2 Mbps duplex
// link with 50 ms latency. Topology reproduces exactly that construction and
// provides the shortest-path routing (hop-count; all links are identical)
// used by the simulator.
#pragma once

#include <cstddef>
#include <vector>

#include "mpz/rng.h"

namespace ppgr::net {

using mpz::Rng;

struct Edge {
  std::size_t a;
  std::size_t b;  // a < b
};

class Topology {
 public:
  /// Explicit edge list over `nodes` vertices; throws if disconnected or if
  /// any endpoint is out of range.
  Topology(std::size_t nodes, std::vector<Edge> edges);

  /// The paper's construction: start from the complete graph on `nodes`
  /// vertices, repeatedly delete a random edge whose removal keeps the graph
  /// connected, until `target_edges` remain.
  static Topology random_connected(std::size_t nodes, std::size_t target_edges,
                                   Rng& rng);

  [[nodiscard]] std::size_t nodes() const { return n_; }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Hop-count shortest path from a to b as a sequence of *directed edge
  /// indices* into edges() (each index identifies the undirected link; the
  /// traversal direction is implied by walking from a). Precomputed via BFS.
  /// path(a, a) is the empty path (a node reaches itself in zero hops).
  [[nodiscard]] const std::vector<std::size_t>& path(std::size_t a,
                                                     std::size_t b) const;
  /// Hop distance.
  [[nodiscard]] std::size_t distance(std::size_t a, std::size_t b) const {
    return path(a, b).size();
  }

 private:
  [[nodiscard]] static bool connected(std::size_t n,
                                      const std::vector<Edge>& edges,
                                      std::size_t skip_edge);

  std::size_t n_;
  std::vector<Edge> edges_;
  // paths_[a * n + b] = edge indices along a shortest a->b path.
  std::vector<std::vector<std::size_t>> paths_;
};

}  // namespace ppgr::net

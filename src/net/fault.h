// Deterministic fault injection and the channel failure model.
//
// net::FaultPlan is a seeded schedule of transport faults the Router
// consults on every message: drop, duplicate, reorder-within-round,
// bit-corrupt (detected by the CRC32 frame check), tamper (adversarial:
// payload corrupted AND the CRC recomputed, so the channel cannot detect it
// and the damage surfaces at the protocol layer as a decode/verify
// failure), delay-spike, and party-crash-at-phase. Every decision is a pure
// function of (seed, kind, round, src, dst, message-index, attempt) via
// mpz::StreamFamily counter-seeded streams — never of wall clock, thread
// schedule or prior decisions — so the same seed produces a bit-identical
// fault schedule at any --parallelism (all injection happens at the
// Router's serial choke point; see DESIGN.md §7 "Failure model").
//
// Recovery semantics live in the Router (net/channel.h): with a plan
// installed every payload send is wrapped in a sequenced CRC32 frame,
// dropped/corrupted attempts are retransmitted with deterministic
// exponential backoff up to a retry/deadline budget, duplicates are
// discarded and reorders healed by sequence number on the receive path, and
// an undeliverable message surfaces as a typed net::ChannelError — never as
// undefined behavior or a hang. Without a plan the fault layer is a strict
// no-op: no framing, no extra bytes, bit-identical exports.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpz/rng.h"
#include "runtime/metrics.h"

namespace ppgr::net {

enum class FaultKind : std::uint8_t {
  kDrop = 0,
  kDuplicate = 1,
  kReorder = 2,
  kCorrupt = 3,
  kTamper = 4,
  kDelay = 5,
  kCrash = 6,
};
inline constexpr std::size_t kFaultKindCount = 7;
[[nodiscard]] const char* to_string(FaultKind kind);

/// One injected fault occurrence, in injection order (exported in the
/// "ppgr.fault.v1" report). For kCrash, src == dst == the crashed party.
struct FaultEvent {
  FaultKind kind = FaultKind::kDrop;
  std::size_t round = 0;
  std::size_t src = 0;
  std::size_t dst = 0;
  std::size_t attempt = 0;  // transmission attempt the fault hit (0-based)
};

/// A scheduled party crash: the party goes silent at the start of `phase`
/// (its sends are suppressed; peers that wait on it see a typed
/// ChannelError with kind kPeerDead).
struct CrashPoint {
  std::size_t party = 0;
  runtime::Phase phase = runtime::Phase::kPhase1;
};

/// Seeded fault schedule + channel recovery policy. Probabilities are per
/// transmission attempt of a payload-carrying message; accounting-only
/// transmits are subject to delay spikes only (their content is handed
/// over out-of-band, so there is nothing to lose or corrupt).
struct FaultPlanConfig {
  std::uint64_t seed = 0;
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double corrupt = 0.0;  // detected: CRC mismatch -> discard + retransmit
  double tamper = 0.0;   // undetected: CRC fixed up -> protocol-layer fault
  double delay = 0.0;    // extra virtual delay on delivery
  double delay_spike_s = 0.5;
  /// Restrict probabilistic injection to one protocol phase (1, 2 or 3);
  /// 0 = all phases. Crash points carry their own phase.
  int only_phase = 0;
  std::vector<CrashPoint> crashes;

  // Channel recovery policy (consumed by the Router).
  std::size_t max_retries = 3;    // retransmit attempts after the first send
  double backoff_base_s = 0.05;   // doubles per retry (deterministic)
  /// Per-send virtual deadline; 0 = derived from the simulator's replay
  /// timing parameters (see FaultPlan::effective_deadline).
  double deadline_s = 0.0;

  /// True when the plan can inject anything at all. A Router given a
  /// disabled plan behaves exactly like one given no plan.
  [[nodiscard]] bool enabled() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || corrupt > 0 ||
           tamper > 0 || delay > 0 || !crashes.empty();
  }
};

/// Parses a plan spec string of comma-separated directives, e.g.
///   "seed=7,drop=0.05,corrupt=0.01,crash=3@2,retries=4,phase=2"
/// Keys: seed, drop, duplicate, reorder, corrupt, tamper, delay (probability
/// in [0,1]), delay_s (spike seconds), phase (1|2|3, 0=all), retries,
/// backoff (seconds), deadline (seconds), crash=<party>@<phase>
/// (repeatable). Throws std::invalid_argument on malformed input.
[[nodiscard]] FaultPlanConfig parse_fault_plan(const std::string& spec);

/// Per-attempt injection decision (all draws made even when a higher-
/// precedence fault fires, so the schedule for one message never depends on
/// another message's outcome).
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool reorder = false;
  bool corrupt = false;
  bool tamper = false;
  bool delay = false;
  /// Raw entropy for corrupt/tamper; the Router reduces it modulo the
  /// payload bit count to pick the bit to flip.
  std::size_t flip_bit = 0;
};

class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanConfig cfg);

  [[nodiscard]] const FaultPlanConfig& config() const { return cfg_; }
  [[nodiscard]] bool enabled() const { return cfg_.enabled(); }
  /// Probabilistic injection applies in `phase`?
  [[nodiscard]] bool active_in(runtime::Phase phase) const;

  /// Pure function of (seed, kind, round, src, dst, msg_index, attempt).
  [[nodiscard]] FaultDecision decide(runtime::Phase phase, std::size_t round,
                                     std::size_t src, std::size_t dst,
                                     std::size_t msg_index,
                                     std::size_t attempt) const;

  /// Parties whose crash point is exactly `phase` (activated by the Router
  /// at the phase transition).
  [[nodiscard]] std::vector<std::size_t> crashes_at(
      runtime::Phase phase) const;

  /// The per-send virtual deadline: the configured value, or — when 0 — a
  /// value derived from the simulator's replay timing (one round trip per
  /// allowed attempt plus the full backoff ladder).
  [[nodiscard]] double effective_deadline(double link_latency_s) const;

 private:
  FaultPlanConfig cfg_;
  mpz::StreamFamily family_;
};

// ---------------------------------------------------------------------------
// Typed channel failures.

enum class ChannelErrorKind : std::uint8_t {
  kBadFrame = 0,  // truncated / over-long / malformed frame encoding
  kTimeout = 1,   // per-send deadline exceeded
  kGiveUp = 2,    // retransmit budget exhausted
  kPeerDead = 3,  // counterpart crashed (or its message was suppressed)
};
[[nodiscard]] const char* to_string(ChannelErrorKind kind);

/// Every transport-level failure the Router can surface. Protocol code
/// converts these into core::ProtocolFault with phase context attached.
class ChannelError : public std::runtime_error {
 public:
  ChannelError(ChannelErrorKind kind, std::size_t src, std::size_t dst,
               std::size_t round, const std::string& what)
      : std::runtime_error(what),
        kind_(kind),
        src_(src),
        dst_(dst),
        round_(round) {}

  [[nodiscard]] ChannelErrorKind kind() const { return kind_; }
  [[nodiscard]] std::size_t src() const { return src_; }
  [[nodiscard]] std::size_t dst() const { return dst_; }
  [[nodiscard]] std::size_t round() const { return round_; }

 private:
  ChannelErrorKind kind_;
  std::size_t src_;
  std::size_t dst_;
  std::size_t round_;
};

// ---------------------------------------------------------------------------
// CRC32 frame codec (active only when a fault plan is installed).
//
// Frame layout (12-byte header + payload):
//   u32 total length (header + payload)  -- self-describing: decode rejects
//   u32 sequence number (per link)          truncated or over-long buffers
//   u32 CRC32 (IEEE) of the payload         with a typed error
// All integers little-endian.

inline constexpr std::size_t kFrameHeaderBytes = 12;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    std::uint32_t seq, std::span<const std::uint8_t> payload);

struct Frame {
  std::uint32_t seq = 0;
  bool crc_ok = false;  // payload intact? (corruption is detected, not UB)
  std::vector<std::uint8_t> payload;
};

/// Throws ChannelError(kBadFrame) when `bytes` is shorter than the header
/// or its length field disagrees with the buffer size (truncated or
/// over-long frame). A CRC mismatch is NOT an exception — the receiver
/// discards and waits for the retransmit — so it is reported via `crc_ok`.
[[nodiscard]] Frame decode_frame(std::span<const std::uint8_t> bytes);

// ---------------------------------------------------------------------------
// Fault report ("ppgr.fault.v1").

struct FaultStats {
  std::uint64_t injected[kFaultKindCount] = {};
  std::uint64_t retransmits = 0;         // retry attempts made
  std::uint64_t crc_detected = 0;        // receiver-side CRC rejections
  std::uint64_t duplicates_dropped = 0;  // receiver-side dedup discards
  std::uint64_t reorders_healed = 0;     // expected seq found out of order
  std::uint64_t timeouts = 0;            // sends abandoned by the deadline
  std::uint64_t giveups = 0;             // sends abandoned, retries spent

  [[nodiscard]] std::uint64_t injected_total() const {
    std::uint64_t t = 0;
    for (const std::uint64_t v : injected) t += v;
    return t;
  }
};

/// Everything one Router observed under a fault plan; attached to
/// FrameworkResult::faults and exported as JSON.
struct FaultReport {
  FaultPlanConfig plan;
  FaultStats stats;
  std::vector<FaultEvent> events;

  /// Deterministic JSON document, schema "ppgr.fault.v1": the plan echo,
  /// the counters and the full injection event log.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace ppgr::net

// The transport seam behind net::Router (DESIGN.md §5f).
//
// The Router is the single choke point every inter-party message goes
// through. Where the bytes physically travel is this interface's job:
//
//  - no transport installed (Router::Config::transport == nullptr): the
//    in-process simulator path — payloads move through the Router's own
//    FIFO mailboxes and next_round() replays the round on net::Simulator's
//    virtual timeline. This is the CI-deterministic default; its behavior
//    (wire bytes, exports, fault injection) is byte-identical to every
//    build before the seam existed.
//
//  - a Transport installed: the Router keeps doing exactly what it is for
//    (accounting the exact serialized payload bytes into the
//    TraceRecorder/CommRegistry, phase/round bookkeeping, flight-recorder
//    taps) but hands payloads for non-local destinations to the transport
//    and blocks on it for payloads from non-local sources. net::tcp::
//    TcpTransport is the real-socket implementation (one OS process per
//    party over length-delimited TCP streams).
//
// Contract: `local(p)` partitions the party ids; the protocol driver in
// this process only ever sends *from* local parties and receives *to*
// local parties. Transports carry opaque payload bytes — framing, CRC,
// sequencing and handshake are the transport's business — and surface
// every failure as a typed net::ChannelError (never a hang: receives are
// bounded by the transport's read timeout).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/fault.h"

namespace ppgr::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// True when party p's protocol state machine executes in this process.
  [[nodiscard]] virtual bool local(std::size_t party) const = 0;

  /// Ships one payload on (src local, dst non-local). Delivery is FIFO per
  /// directed link. Throws ChannelError on transport failure.
  virtual void send(std::size_t src, std::size_t dst,
                    const std::vector<std::uint8_t>& payload) = 0;

  /// Blocks for the next payload on (src non-local, dst local). FIFO per
  /// directed link. Throws ChannelError — kTimeout when the read deadline
  /// expires, kPeerDead when the peer closed, kBadFrame on a corrupt or
  /// out-of-sequence frame.
  [[nodiscard]] virtual std::vector<std::uint8_t> receive(std::size_t src,
                                                          std::size_t dst) = 0;

  /// Cumulative frame-level counters in the FaultStats taxonomy (CRC
  /// rejects -> crc_detected, read timeouts -> timeouts, connect-retry
  /// attempts -> retransmits, connect give-ups -> giveups). Merged into
  /// Router::fault_report() so the ppgr.fault.v1 export covers real-socket
  /// runs too.
  [[nodiscard]] virtual FaultStats stats() const = 0;
};

}  // namespace ppgr::net

// Metered party-to-party message transport.
//
// net::Router is the single choke point every inter-party message of the
// in-process frameworks goes through: a send hands over *serialized* bytes
// (produced by the wire codecs of crypto/codec.h and core/codec.h), the
// router accounts the exact byte count in the runtime::TraceRecorder (the
// replayable transfer log) and the runtime::CommRegistry (the measured
// communication view), and enqueues the payload in a FIFO per-(src, dst)
// mailbox for the destination to receive() and decode. next_round() is the
// synchronous round barrier: it closes the trace round and replays the
// round's transfers through net::Simulator on the router's topology,
// stamping each flow with its simulated queueing / transmission /
// propagation segments on the virtual timeline.
//
// Two send flavours (DESIGN.md Sec. 5d):
//  - send(): payload retained and later receive()d — the bytes a decoding
//    party actually consumes;
//  - transmit(): accounting + virtual-time delivery only, for messages
//    whose serialized form was produced and measured but whose content the
//    in-process HBC simulation hands over out-of-band (e.g. per-verifier
//    Schnorr challenges already embedded in the prover's transcript).
//
// Parallel regions never touch the router directly: tasks stage messages in
// per-task runtime::CommBuffers and the orchestrator absorbs them in
// task-index order (absorb()), so the flow sequence is schedule-independent.
//
// The default topology is the complete graph over the parties (party p on
// node p) with the simulator's stock 2 Mbps / 50 ms links: every pair is
// directly connected, so virtual times reflect per-link serialization and
// contention, not routing detours. Benches that want the paper's sparse
// 80-node network pass an explicit topology + placement.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "net/simulator.h"
#include "net/topology.h"
#include "runtime/comm.h"
#include "runtime/trace.h"
#include "runtime/wire.h"

namespace ppgr::net {

class Channel;

class Router {
 public:
  struct Config {
    SimulatorConfig sim{};
    /// Optional explicit topology and party -> node placement; both must be
    /// set together and node_of must have one entry per party. Default:
    /// complete graph with party p on node p.
    const Topology* topo = nullptr;
    std::vector<std::size_t> node_of{};
  };

  /// `trace` must outlive the router; `comm` may be null (byte accounting
  /// into the trace only — no flow records, no virtual-time simulation).
  Router(std::size_t parties, runtime::TraceRecorder& trace,
         runtime::CommRegistry* comm);
  Router(std::size_t parties, runtime::TraceRecorder& trace,
         runtime::CommRegistry* comm, Config cfg);

  [[nodiscard]] std::size_t parties() const { return parties_; }

  /// Forwards the attribution phase to the comm registry (no-op without one).
  void set_phase(runtime::Phase p);

  /// Serialized send: accounts payload->size() bytes on (src, dst) and
  /// enqueues the payload for receive(). Broadcasts share one payload.
  void send(std::size_t src, std::size_t dst,
            std::shared_ptr<const std::vector<std::uint8_t>> payload);
  void send(std::size_t src, std::size_t dst, std::vector<std::uint8_t> bytes);
  /// Accounting-only send; see the header comment.
  void transmit(std::size_t src, std::size_t dst, std::size_t bytes);
  /// Absorbs a per-task staging buffer: its messages (in staged order) are
  /// accounted and, when they carry payloads, enqueued. Clears the buffer.
  void absorb(runtime::CommBuffer& buf);

  /// Pops the oldest pending payload on (src, dst). Throws std::logic_error
  /// when the mailbox is empty.
  [[nodiscard]] std::shared_ptr<const std::vector<std::uint8_t>> receive(
      std::size_t src, std::size_t dst);

  /// Round barrier: simulates the round's messages on the virtual network
  /// (filling the comm registry's flow timings) and closes the trace round.
  void next_round();

  /// Pending (sent, not yet received) payloads across all mailboxes; a
  /// cleanly finished protocol leaves 0.
  [[nodiscard]] std::size_t pending() const;

  [[nodiscard]] Channel channel(std::size_t src, std::size_t dst);

 private:
  void account(std::size_t src, std::size_t dst, std::size_t bytes);
  [[nodiscard]] std::deque<std::shared_ptr<const std::vector<std::uint8_t>>>&
  mailbox(std::size_t src, std::size_t dst);

  std::size_t parties_;
  runtime::TraceRecorder& trace_;
  runtime::CommRegistry* comm_;
  std::optional<Topology> owned_topo_;
  const Topology* topo_;
  std::vector<std::size_t> node_of_;
  Simulator sim_;
  std::vector<std::deque<std::shared_ptr<const std::vector<std::uint8_t>>>>
      mailboxes_;
  std::vector<runtime::Transfer> round_;  // current round, for the simulator
  std::size_t pending_ = 0;
};

/// Lightweight directed (src -> dst) handle onto a Router — what protocol
/// code passes around to send or receive on one link.
class Channel {
 public:
  Channel(Router& router, std::size_t src, std::size_t dst)
      : router_(&router), src_(src), dst_(dst) {}

  [[nodiscard]] std::size_t src() const { return src_; }
  [[nodiscard]] std::size_t dst() const { return dst_; }

  /// Sends the writer's bytes (consumes the writer).
  void send(runtime::Writer&& w) { router_->send(src_, dst_, w.take()); }
  void send(std::shared_ptr<const std::vector<std::uint8_t>> payload) {
    router_->send(src_, dst_, std::move(payload));
  }
  void transmit(std::size_t bytes) { router_->transmit(src_, dst_, bytes); }
  [[nodiscard]] std::shared_ptr<const std::vector<std::uint8_t>> receive() {
    return router_->receive(src_, dst_);
  }

 private:
  Router* router_;
  std::size_t src_;
  std::size_t dst_;
};

inline Channel Router::channel(std::size_t src, std::size_t dst) {
  return Channel{*this, src, dst};
}

}  // namespace ppgr::net

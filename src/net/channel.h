// Metered party-to-party message transport.
//
// net::Router is the single choke point every inter-party message of the
// in-process frameworks goes through: a send hands over *serialized* bytes
// (produced by the wire codecs of crypto/codec.h and core/codec.h), the
// router accounts the exact byte count in the runtime::TraceRecorder (the
// replayable transfer log) and the runtime::CommRegistry (the measured
// communication view), and enqueues the payload in a FIFO per-(src, dst)
// mailbox for the destination to receive() and decode. next_round() is the
// synchronous round barrier: it closes the trace round and replays the
// round's transfers through net::Simulator on the router's topology,
// stamping each flow with its simulated queueing / transmission /
// propagation segments on the virtual timeline.
//
// Two send flavours (DESIGN.md Sec. 5d):
//  - send(): payload retained and later receive()d — the bytes a decoding
//    party actually consumes;
//  - transmit(): accounting + virtual-time delivery only, for messages
//    whose serialized form was produced and measured but whose content the
//    in-process HBC simulation hands over out-of-band (e.g. per-verifier
//    Schnorr challenges already embedded in the prover's transcript).
//
// Parallel regions never touch the router directly: tasks stage messages in
// per-task runtime::CommBuffers and the orchestrator absorbs them in
// task-index order (absorb()), so the flow sequence is schedule-independent.
//
// Fault injection (DESIGN.md Sec. 7): constructed with a net::FaultPlan the
// router wraps every payload send in a sequenced CRC32 frame and resolves a
// deterministic retry ladder per message — dropped or CRC-rejected attempts
// are retransmitted with exponential backoff until the plan's retry budget
// or virtual deadline runs out, duplicates are discarded and reorders
// healed by sequence number on receive, tampered frames (CRC fixed up)
// deliver and surface at the protocol layer, crash points mute a party from
// a phase onward, and a permanently undeliverable message turns the
// matching receive() into a typed net::ChannelError. All injection happens
// at this serial choke point, keyed by counter-seeded streams, so the fault
// schedule is bit-identical at any --parallelism. Without a plan every
// fault branch is skipped and the wire format, byte accounting and exports
// are unchanged.
//
// The default topology is the complete graph over the parties (party p on
// node p) with the simulator's stock 2 Mbps / 50 ms links: every pair is
// directly connected, so virtual times reflect per-link serialization and
// contention, not routing detours. Benches that want the paper's sparse
// 80-node network pass an explicit topology + placement.
#pragma once

#include <chrono>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "net/fault.h"
#include "net/simulator.h"
#include "net/topology.h"
#include "runtime/comm.h"
#include "runtime/flightrec.h"
#include "runtime/telemetry.h"
#include "runtime/trace.h"
#include "runtime/wire.h"

namespace ppgr::net {

class Channel;
class Transport;

class Router {
 public:
  struct Config {
    SimulatorConfig sim{};
    /// Optional explicit topology and party -> node placement; both must be
    /// set together and node_of must have one entry per party. Default:
    /// complete graph with party p on node p.
    const Topology* topo = nullptr;
    std::vector<std::size_t> node_of{};
    /// Optional fault schedule; must outlive the router. A null or disabled
    /// plan leaves the router's behavior (and wire bytes) untouched.
    const FaultPlan* faults = nullptr;
    /// Optional round-progress hook (live telemetry): notified with the
    /// current (phase, closed-round index) at every set_phase() and
    /// next_round(). Must outlive the router and be safe to call from the
    /// orchestrator thread while other threads read (runtime::ProgressCell
    /// is). Null: zero overhead, no behavior change.
    runtime::ProgressSink* progress = nullptr;
    /// Optional forensic flight recorder: every phase/round transition,
    /// accounted send, retransmit, fault injection and surfaced channel
    /// error is recorded as a typed event. Must outlive the router.
    /// Observation-only — null means one untaken branch per event site.
    runtime::FlightRecorder* flight = nullptr;
    /// Optional real transport (DESIGN.md §5f). Null: the in-process
    /// simulator path, byte-identical to every build before the seam
    /// existed. Non-null: sends to non-local parties are handed to the
    /// transport (after the usual byte accounting) and receives from
    /// non-local parties block on it; next_round() stamps wall-clock flow
    /// timings instead of replaying the virtual-time simulator. Must
    /// outlive the router. Mutually exclusive with `faults` — the injection
    /// ladder is a simulator-mailbox construct.
    Transport* transport = nullptr;
  };

  /// `trace` must outlive the router; `comm` may be null (byte accounting
  /// into the trace only — no flow records, no virtual-time simulation).
  Router(std::size_t parties, runtime::TraceRecorder& trace,
         runtime::CommRegistry* comm);
  Router(std::size_t parties, runtime::TraceRecorder& trace,
         runtime::CommRegistry* comm, Config cfg);

  [[nodiscard]] std::size_t parties() const { return parties_; }

  /// Forwards the attribution phase to the comm registry (no-op without
  /// one) and, under a fault plan, activates the crash points scheduled for
  /// this phase.
  void set_phase(runtime::Phase p);

  /// Serialized send: accounts payload->size() bytes on (src, dst) and
  /// enqueues the payload for receive(). Broadcasts share one payload.
  /// Under a fault plan the payload travels in a CRC32 frame and the whole
  /// retry ladder is resolved here (see the header comment).
  void send(std::size_t src, std::size_t dst,
            std::shared_ptr<const std::vector<std::uint8_t>> payload);
  void send(std::size_t src, std::size_t dst, std::vector<std::uint8_t> bytes);
  /// Accounting-only send; see the header comment.
  void transmit(std::size_t src, std::size_t dst, std::size_t bytes);
  /// Absorbs a per-task staging buffer: its messages (in staged order) are
  /// accounted and, when they carry payloads, enqueued. Clears the buffer.
  void absorb(runtime::CommBuffer& buf);

  /// Pops the oldest pending payload on (src, dst). Throws std::logic_error
  /// when the mailbox is empty. Under a fault plan: discards duplicates and
  /// CRC-rejected frames, heals reorders by sequence number, and throws a
  /// typed ChannelError when the awaited message permanently failed
  /// (timeout / retries exhausted / peer crashed).
  [[nodiscard]] std::shared_ptr<const std::vector<std::uint8_t>> receive(
      std::size_t src, std::size_t dst);

  /// Round barrier: simulates the round's messages on the virtual network
  /// (filling the comm registry's flow timings) and closes the trace round.
  void next_round();

  /// Pending (sent, not yet received) payloads across all mailboxes; a
  /// cleanly finished protocol leaves 0.
  [[nodiscard]] std::size_t pending() const;

  [[nodiscard]] Channel channel(std::size_t src, std::size_t dst);

  // Fault-plan introspection (all cheap; meaningful only with a plan).
  [[nodiscard]] bool fault_active() const { return faults_ != nullptr; }
  [[nodiscard]] bool party_dead(std::size_t p) const;
  /// Crashed parties, ascending.
  [[nodiscard]] std::vector<std::size_t> dead_parties() const;
  /// Rounds closed so far (the fault schedule's round coordinate).
  [[nodiscard]] std::size_t round_index() const { return round_index_; }
  /// Plan echo + counters + injection event log ("ppgr.fault.v1"). Empty
  /// default report when no plan is installed. Under a real transport the
  /// transport's frame-level counters (CRC rejects, read timeouts, connect
  /// retries/give-ups) are merged in, so the export covers socket runs.
  [[nodiscard]] FaultReport fault_report() const;

 private:
  struct FailedSend {
    std::uint32_t seq = 0;
    ChannelErrorKind kind = ChannelErrorKind::kGiveUp;
    std::size_t round = 0;
  };

  void account(std::size_t src, std::size_t dst, std::size_t bytes,
               double extra_delay_s = 0.0);
  [[nodiscard]] std::deque<std::shared_ptr<const std::vector<std::uint8_t>>>&
  mailbox(std::size_t src, std::size_t dst);
  void faulted_send(std::size_t src, std::size_t dst,
                    std::shared_ptr<const std::vector<std::uint8_t>> payload);
  [[nodiscard]] std::shared_ptr<const std::vector<std::uint8_t>>
  faulted_receive(std::size_t src, std::size_t dst);
  void note(FaultKind kind, std::size_t src, std::size_t dst,
            std::size_t attempt);

  std::size_t parties_;
  runtime::TraceRecorder& trace_;
  runtime::CommRegistry* comm_;
  std::optional<Topology> owned_topo_;
  const Topology* topo_;
  std::vector<std::size_t> node_of_;
  Simulator sim_;
  std::vector<std::deque<std::shared_ptr<const std::vector<std::uint8_t>>>>
      mailboxes_;
  std::vector<runtime::Transfer> round_;  // current round, for the simulator
  std::size_t pending_ = 0;

  runtime::ProgressSink* progress_ = nullptr;  // round-progress hook
  runtime::FlightRecorder* flight_ = nullptr;  // forensic event ring

  // Real-transport state (inert when transport_ == nullptr).
  Transport* transport_ = nullptr;
  std::chrono::steady_clock::time_point start_{};  // wall-clock origin
  double round_open_s_ = 0.0;  // seconds since start_ at last round barrier

  // Fault-plan state (inert when faults_ == nullptr).
  const FaultPlan* faults_ = nullptr;
  double deadline_s_ = 0.0;
  runtime::Phase phase_ = runtime::Phase::kSetup;
  std::size_t round_index_ = 0;
  std::vector<char> dead_;
  std::vector<std::uint32_t> tx_seq_;   // per link: next frame sequence
  std::vector<std::uint32_t> rx_seq_;   // per link: next expected sequence
  std::vector<std::uint32_t> msg_ctr_;  // per link: fault-schedule msg index
  std::vector<std::deque<FailedSend>> failures_;
  std::vector<double> round_extra_;  // per round_ entry: injected delay
  FaultStats stats_;
  std::vector<FaultEvent> events_;
};

/// Lightweight directed (src -> dst) handle onto a Router — what protocol
/// code passes around to send or receive on one link.
class Channel {
 public:
  Channel(Router& router, std::size_t src, std::size_t dst)
      : router_(&router), src_(src), dst_(dst) {}

  [[nodiscard]] std::size_t src() const { return src_; }
  [[nodiscard]] std::size_t dst() const { return dst_; }

  /// Sends the writer's bytes (consumes the writer).
  void send(runtime::Writer&& w) { router_->send(src_, dst_, w.take()); }
  void send(std::shared_ptr<const std::vector<std::uint8_t>> payload) {
    router_->send(src_, dst_, std::move(payload));
  }
  void transmit(std::size_t bytes) { router_->transmit(src_, dst_, bytes); }
  [[nodiscard]] std::shared_ptr<const std::vector<std::uint8_t>> receive() {
    return router_->receive(src_, dst_);
  }

 private:
  Router* router_;
  std::size_t src_;
  std::size_t dst_;
};

inline Channel Router::channel(std::size_t src, std::size_t dst) {
  return Channel{*this, src, dst};
}

}  // namespace ppgr::net

// Thin RAII layer over POSIX TCP sockets for the net::tcp transport
// (DESIGN.md §5f): blocking stream sockets with poll()-bounded timeouts,
// an exponential-backoff connect ladder, and a typed mapping from socket
// errnos into the net::ChannelError taxonomy — the same error surface the
// fault-injection layer established, so protocol code cannot tell an
// injected fault from a real one.
//
// Also the stream form of the PR 5 frame codec: write_frame /
// read_frame carry net/fault.h's `len | seq | crc32` frames over a
// length-delimited byte stream. read_frame is what the flaky-socketpair
// tests beat on: short reads, mid-frame closes and garbage length fields
// must all surface as typed ChannelErrors within the read timeout.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/fault.h"

namespace ppgr::net::tcp {

/// Timeouts and the connect retry ladder. Zero/negative timeout = wait
/// forever (tests always set finite ones; ppgr_party defaults are finite).
struct SocketConfig {
  double connect_timeout_s = 5.0;  // per connect() attempt
  double read_timeout_s = 30.0;    // per recv() poll
  double write_timeout_s = 30.0;   // per send() poll
  std::size_t max_retries = 8;     // extra connect attempts after the first
  double backoff_base_s = 0.1;     // doubles per attempt
};

/// Maps an errno from a socket syscall to the ChannelError taxonomy:
/// timeouts -> kTimeout, resets/EOF -> kPeerDead, everything else (refused,
/// unreachable, ...) -> kGiveUp.
[[nodiscard]] ChannelErrorKind errno_error_kind(int err);

/// One connected stream socket (RAII over the fd; move-only).
class TcpSocket {
 public:
  TcpSocket() = default;
  /// Adopts an already-connected fd (accept(), socketpair() in tests).
  explicit TcpSocket(int fd, SocketConfig cfg = {});
  ~TcpSocket();
  TcpSocket(TcpSocket&& other) noexcept;
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  /// Connects to host:port, retrying with exponential backoff (cfg.
  /// max_retries attempts beyond the first, cfg.backoff_base_s doubling)
  /// — the peer process may simply not have bound its listener yet.
  /// Throws ChannelError(kGiveUp) when the ladder is exhausted. When
  /// retries_used is non-null it receives the number of extra attempts
  /// the ladder consumed (for FaultStats::retransmits accounting).
  [[nodiscard]] static TcpSocket connect(const std::string& host,
                                         std::uint16_t port,
                                         const SocketConfig& cfg,
                                         std::size_t* retries_used = nullptr);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] const SocketConfig& config() const { return cfg_; }
  void close();

  /// Polls the socket for readability within timeout_s; false on timeout.
  /// Lets a receive loop idle at a frame boundary in short slices (checking
  /// a stop flag between them) without burning the read timeout on links
  /// that are legitimately quiet during long compute phases.
  [[nodiscard]] bool wait_readable(double timeout_s);

  /// Writes the whole buffer; each stalled send() is bounded by
  /// cfg.write_timeout_s. Throws ChannelError (kTimeout / kPeerDead).
  void send_all(std::span<const std::uint8_t> data);
  /// Reads exactly data.size() bytes; each stalled recv() is bounded by
  /// cfg.read_timeout_s. A clean peer close mid-read throws kPeerDead.
  void recv_exact(std::span<std::uint8_t> data);

 private:
  int fd_ = -1;
  SocketConfig cfg_{};
};

/// A listening socket bound to 127.0.0.1 (or `host`) : port.
class TcpListener {
 public:
  TcpListener(const std::string& host, std::uint16_t port,
              const SocketConfig& cfg);
  ~TcpListener();
  TcpListener(TcpListener&&) noexcept;
  TcpListener& operator=(TcpListener&&) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Accepts one connection; bounded by cfg.connect_timeout_s scaled over
  /// the full retry ladder (peers may back off before connecting). Throws
  /// ChannelError(kTimeout) when nobody shows up.
  [[nodiscard]] TcpSocket accept();
  /// The bound port (useful with port 0 = kernel-assigned, in tests).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  SocketConfig cfg_{};
};

/// Frame cap for stream reads: a length field beyond this is a garbage or
/// hostile frame, rejected as kBadFrame before any allocation. 64 MiB
/// comfortably clears the largest protocol message (the shuffle chain's
/// whole-V forward) at every supported spec.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Sends one `len | seq | crc` frame (net/fault.h codec) over the stream.
void write_frame(TcpSocket& sock, std::uint32_t seq,
                 std::span<const std::uint8_t> payload);

/// Reads one frame off the stream: 4-byte length, then the rest. Throws
/// ChannelError(kBadFrame) on an undersized/oversized length field,
/// kTimeout / kPeerDead from the underlying reads. CRC validity is
/// reported in Frame::crc_ok (the caller decides — the transport treats a
/// CRC mismatch on TCP as kBadFrame, since TCP already retransmits).
[[nodiscard]] Frame read_frame(TcpSocket& sock);

}  // namespace ppgr::net::tcp

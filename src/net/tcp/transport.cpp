#include "net/tcp/transport.h"

#include <sys/socket.h>

#include <stdexcept>

#include "runtime/wire.h"

namespace ppgr::net::tcp {

namespace {

constexpr std::uint32_t kHelloMagic = 0x52475050;  // "PPGR"
constexpr std::uint32_t kHelloVersion = 1;
constexpr std::uint32_t kHelloSeq = 0xffffffffu;  // outside the data space

std::string link_str(std::size_t src, std::size_t dst) {
  return "P" + std::to_string(src) + "->P" + std::to_string(dst);
}

}  // namespace

Endpoint parse_endpoint(const std::string& s) {
  const auto colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size())
    throw std::invalid_argument("endpoint '" + s + "' is not host:port");
  Endpoint ep;
  ep.host = s.substr(0, colon);
  const unsigned long port = std::stoul(s.substr(colon + 1));
  if (port == 0 || port > 65535)
    throw std::invalid_argument("endpoint '" + s + "': port out of range");
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

TcpTransport::TcpTransport(TcpTransportConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.parties < 2)
    throw std::invalid_argument("TcpTransport: need >= 2 parties");
  if (cfg_.party >= cfg_.parties)
    throw std::invalid_argument("TcpTransport: party id out of range");
  if (cfg_.peers.size() < cfg_.parties) cfg_.peers.resize(cfg_.parties);
  peers_.resize(cfg_.parties);
  listener_.emplace(cfg_.listen.host, cfg_.listen.port, cfg_.socket);
}

TcpTransport::~TcpTransport() { shutdown(); }

std::uint16_t TcpTransport::listen_port() const {
  return listener_.has_value() ? listener_->port() : 0;
}

void TcpTransport::handshake_send(Peer& peer) {
  runtime::Writer w;
  w.u32(kHelloMagic);
  w.u32(kHelloVersion);
  w.u64(cfg_.session);
  w.u32(static_cast<std::uint32_t>(cfg_.parties));
  w.u32(static_cast<std::uint32_t>(cfg_.party));
  write_frame(peer.sock, kHelloSeq, w.data());
}

void TcpTransport::handshake_check(std::size_t expect_party, Peer& peer) {
  const Frame hello = read_frame(peer.sock);
  const auto reject = [&](const std::string& why) {
    throw ChannelError(ChannelErrorKind::kBadFrame, expect_party, cfg_.party,
                       0, "tcp handshake: " + why);
  };
  if (!hello.crc_ok || hello.seq != kHelloSeq)
    reject("corrupt hello frame");
  runtime::Reader r{hello.payload};
  try {
    const std::uint32_t magic = r.u32();
    const std::uint32_t version = r.u32();
    const std::uint64_t session = r.u64();
    const std::uint32_t parties = r.u32();
    const std::uint32_t sender = r.u32();
    r.finish();
    if (magic != kHelloMagic) reject("bad magic (not a ppgr_party peer?)");
    if (version != kHelloVersion)
      reject("protocol version mismatch (peer v" + std::to_string(version) +
             ", ours v" + std::to_string(kHelloVersion) + ")");
    if (session != cfg_.session)
      reject("session id mismatch (different instance file or seed?)");
    if (parties != cfg_.parties)
      reject("party count mismatch (peer says " + std::to_string(parties) +
             ", ours " + std::to_string(cfg_.parties) + ")");
    if (sender != expect_party)
      reject("peer identifies as P" + std::to_string(sender) +
             ", expected P" + std::to_string(expect_party));
  } catch (const runtime::WireError&) {
    reject("undecodable hello payload");
  }
}

void TcpTransport::set_peer(std::size_t id, Endpoint ep) {
  if (connected_)
    throw std::logic_error("TcpTransport::set_peer: already connected");
  if (id >= cfg_.parties)
    throw std::invalid_argument("TcpTransport::set_peer: id out of range");
  cfg_.peers[id] = std::move(ep);
}

void TcpTransport::connect() {
  if (connected_)
    throw std::logic_error("TcpTransport::connect: already connected");
  // Dial every lower-id peer. The connect ladder absorbs start-up skew:
  // a peer that has not bound its listener yet just costs a retry.
  for (std::size_t q = 0; q < cfg_.party; ++q) {
    const Endpoint& ep = cfg_.peers[q];
    if (ep.port == 0)
      throw std::invalid_argument("TcpTransport: no endpoint for peer P" +
                                  std::to_string(q));
    auto peer = std::make_unique<Peer>();
    std::size_t retries = 0;
    try {
      peer->sock = TcpSocket::connect(ep.host, ep.port, cfg_.socket, &retries);
    } catch (const ChannelError&) {
      const std::lock_guard<std::mutex> slock(stats_mu_);
      stats_.retransmits += retries;
      stats_.giveups++;
      throw;
    }
    {
      const std::lock_guard<std::mutex> slock(stats_mu_);
      stats_.retransmits += retries;
    }
    handshake_send(*peer);
    handshake_check(q, *peer);
    peers_[q] = std::move(peer);
  }
  // Accept every higher-id peer; they identify themselves in the hello
  // (accept order is whatever the kernel gives us).
  for (std::size_t need = cfg_.party + 1; need < cfg_.parties; ++need) {
    auto peer = std::make_unique<Peer>();
    peer->sock = listener_->accept();
    const Frame hello = read_frame(peer->sock);
    std::size_t sender = cfg_.parties;
    if (hello.crc_ok && hello.seq == kHelloSeq &&
        hello.payload.size() >= 24) {
      runtime::Reader r{hello.payload};
      (void)r.u32();  // magic, validated below via handshake_check
      (void)r.u32();
      (void)r.u64();
      (void)r.u32();
      sender = r.u32();
    }
    if (sender <= cfg_.party || sender >= cfg_.parties ||
        peers_[sender] != nullptr)
      throw ChannelError(ChannelErrorKind::kBadFrame, sender, cfg_.party, 0,
                         "tcp handshake: unexpected or duplicate peer id " +
                             std::to_string(sender));
    // Re-validate the full hello (magic/version/session/count) against the
    // now-known peer id, then answer with our own.
    {
      runtime::Reader r{hello.payload};
      const std::uint32_t magic = r.u32();
      const std::uint32_t version = r.u32();
      const std::uint64_t session = r.u64();
      const std::uint32_t parties = r.u32();
      const auto reject = [&](const std::string& why) {
        throw ChannelError(ChannelErrorKind::kBadFrame, sender, cfg_.party, 0,
                           "tcp handshake: " + why);
      };
      if (magic != kHelloMagic) reject("bad magic (not a ppgr_party peer?)");
      if (version != kHelloVersion) reject("protocol version mismatch");
      if (session != cfg_.session)
        reject("session id mismatch (different instance file or seed?)");
      if (parties != cfg_.parties) reject("party count mismatch");
    }
    handshake_send(*peer);
    peers_[sender] = std::move(peer);
  }
  // Mesh up: start one reader per peer.
  for (std::size_t q = 0; q < cfg_.parties; ++q) {
    if (q == cfg_.party) continue;
    peers_[q]->reader = std::thread{[this, q] { reader_loop(q); }};
  }
  connected_ = true;
}

void TcpTransport::reader_loop(std::size_t peer_id) {
  Peer& peer = *peers_[peer_id];
  for (;;) {
    // Idle at the frame boundary in short slices so the stop flag is
    // honored promptly, and so a link that is legitimately quiet during a
    // long compute phase never trips the read timeout. Only once bytes
    // start flowing is the frame read bounded by read_timeout_s.
    try {
      while (!peer.sock.wait_readable(0.2)) {
        if (stop_.load(std::memory_order_relaxed)) return;
      }
    } catch (const ChannelError&) {
      const std::lock_guard<std::mutex> lock(peer.mu);
      peer.closed = true;
      peer.cv.notify_all();
      return;
    }
    if (stop_.load(std::memory_order_relaxed)) return;
    Frame frame;
    try {
      frame = read_frame(peer.sock);
    } catch (const ChannelError& e) {
      const std::lock_guard<std::mutex> lock(peer.mu);
      peer.closed = true;
      // Kept for the next receive() on a drained inbox to throw typed.
      if (!peer.error.has_value())
        peer.error.emplace(e.kind(), peer_id, cfg_.party, 0, e.what());
      peer.cv.notify_all();
      return;
    }
    const std::lock_guard<std::mutex> lock(peer.mu);
    if (!frame.crc_ok) {
      // TCP already retransmits; a CRC mismatch here means corruption in
      // flight past the kernel or a buggy/hostile peer — typed, terminal.
      {
        const std::lock_guard<std::mutex> slock(stats_mu_);
        stats_.crc_detected++;
      }
      peer.error.emplace(ChannelErrorKind::kBadFrame, peer_id, cfg_.party, 0,
                         "tcp: CRC mismatch on " +
                             link_str(peer_id, cfg_.party) + " frame #" +
                             std::to_string(frame.seq));
      peer.closed = true;
      peer.cv.notify_all();
      return;
    }
    if (frame.seq != peer.rx_seq) {
      peer.error.emplace(ChannelErrorKind::kBadFrame, peer_id, cfg_.party, 0,
                         "tcp: sequence break on " +
                             link_str(peer_id, cfg_.party) + " (got #" +
                             std::to_string(frame.seq) + ", expected #" +
                             std::to_string(peer.rx_seq) + ")");
      peer.closed = true;
      peer.cv.notify_all();
      return;
    }
    peer.rx_seq++;
    peer.inbox.push_back(std::move(frame.payload));
    peer.cv.notify_one();
  }
}

void TcpTransport::send(std::size_t src, std::size_t dst,
                        const std::vector<std::uint8_t>& payload) {
  if (src != cfg_.party)
    throw std::invalid_argument("TcpTransport::send: src P" +
                                std::to_string(src) + " is not local");
  if (dst >= cfg_.parties || peers_[dst] == nullptr)
    throw std::invalid_argument("TcpTransport::send: no peer P" +
                                std::to_string(dst));
  Peer& peer = *peers_[dst];
  const std::lock_guard<std::mutex> lock(peer.send_mu);
  write_frame(peer.sock, peer.tx_seq++, payload);
}

std::vector<std::uint8_t> TcpTransport::receive(std::size_t src,
                                                std::size_t dst) {
  if (dst != cfg_.party)
    throw std::invalid_argument("TcpTransport::receive: dst P" +
                                std::to_string(dst) + " is not local");
  if (src >= cfg_.parties || peers_[src] == nullptr)
    throw std::invalid_argument("TcpTransport::receive: no peer P" +
                                std::to_string(src));
  Peer& peer = *peers_[src];
  std::unique_lock<std::mutex> lock(peer.mu);
  const double timeout_s = cfg_.socket.read_timeout_s;
  const auto ready = [&] { return !peer.inbox.empty() || peer.closed; };
  if (timeout_s <= 0.0) {
    peer.cv.wait(lock, ready);
  } else if (!peer.cv.wait_for(
                 lock, std::chrono::duration<double>(timeout_s), ready)) {
    {
      const std::lock_guard<std::mutex> slock(stats_mu_);
      stats_.timeouts++;
    }
    throw ChannelError(ChannelErrorKind::kTimeout, src, dst, 0,
                       "tcp: no message on " + link_str(src, dst) +
                           " within " + std::to_string(timeout_s) + "s");
  }
  if (!peer.inbox.empty()) {
    std::vector<std::uint8_t> payload = std::move(peer.inbox.front());
    peer.inbox.pop_front();
    return payload;
  }
  // Closed with an empty inbox: surface the reader's stored error.
  if (peer.error.has_value()) throw ChannelError{*peer.error};
  throw ChannelError(ChannelErrorKind::kPeerDead, src, dst, 0,
                     "tcp: " + link_str(src, dst) + " peer closed");
}

FaultStats TcpTransport::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void TcpTransport::shutdown() {
  // Raise the stop flag (readers notice within one idle slice), then shut
  // the sockets down so readers blocked mid-frame wake up, then join.
  stop_.store(true, std::memory_order_relaxed);
  for (auto& peer : peers_) {
    if (peer == nullptr) continue;
    if (peer->sock.valid()) ::shutdown(peer->sock.fd(), SHUT_RDWR);
  }
  if (listener_.has_value()) listener_->close();
  for (auto& peer : peers_) {
    if (peer == nullptr) continue;
    if (peer->reader.joinable()) peer->reader.join();
    peer->sock.close();
  }
  connected_ = false;
}

}  // namespace ppgr::net::tcp

#include "net/tcp/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace ppgr::net::tcp {

namespace {

std::string errno_str(const char* op, int err) {
  return std::string(op) + ": " + std::strerror(err) + " (errno " +
         std::to_string(err) + ")";
}

[[noreturn]] void throw_errno(const char* op, int err) {
  throw ChannelError(errno_error_kind(err), 0, 0, 0,
                     "tcp: " + errno_str(op, err));
}

/// Polls the fd for `events` within timeout_s (<= 0: forever). Returns
/// false on timeout; throws on poll failure.
bool poll_fd(int fd, short events, double timeout_s, const char* what) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  const int timeout_ms =
      timeout_s <= 0.0 ? -1 : static_cast<int>(timeout_s * 1e3) + 1;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    throw ChannelError(ChannelErrorKind::kGiveUp, 0, 0, 0,
                       "tcp: " + errno_str(what, errno));
  }
}

int open_tcp_socket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket", errno);
  const int one = 1;
  // Latency matters more than byte-coalescing for the frame-per-message
  // protocol traffic.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw ChannelError(ChannelErrorKind::kGiveUp, 0, 0, 0,
                       "tcp: not an IPv4 address: '" + host +
                           "' (hostnames are not resolved; use numeric "
                           "addresses, e.g. 127.0.0.1)");
  return addr;
}

}  // namespace

ChannelErrorKind errno_error_kind(int err) {
  switch (err) {
    case EAGAIN:
#if EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case ETIMEDOUT:
    case EINPROGRESS:
      return ChannelErrorKind::kTimeout;
    case ECONNRESET:
    case EPIPE:
    case ESHUTDOWN:
      return ChannelErrorKind::kPeerDead;
    default:
      return ChannelErrorKind::kGiveUp;
  }
}

TcpSocket::TcpSocket(int fd, SocketConfig cfg) : fd_(fd), cfg_(cfg) {}

TcpSocket::~TcpSocket() { close(); }

TcpSocket::TcpSocket(TcpSocket&& other) noexcept
    : fd_(other.fd_), cfg_(other.cfg_) {
  other.fd_ = -1;
}

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    cfg_ = other.cfg_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpSocket TcpSocket::connect(const std::string& host, std::uint16_t port,
                             const SocketConfig& cfg,
                             std::size_t* retries_used) {
  const sockaddr_in addr = make_addr(host, port);
  double backoff_s = cfg.backoff_base_s;
  int last_err = ECONNREFUSED;
  for (std::size_t attempt = 0; attempt <= cfg.max_retries; ++attempt) {
    if (attempt > 0) {
      if (retries_used != nullptr) ++*retries_used;
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
      backoff_s *= 2.0;
    }
    const int fd = open_tcp_socket();
    // Nonblocking connect so the per-attempt deadline holds even against a
    // blackholing address.
    struct timeval tv;
    tv.tv_sec = static_cast<long>(cfg.connect_timeout_s);
    tv.tv_usec = static_cast<long>((cfg.connect_timeout_s - tv.tv_sec) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) return TcpSocket{fd, cfg};
    last_err = errno;
    ::close(fd);
  }
  throw ChannelError(ChannelErrorKind::kGiveUp, 0, 0, 0,
                     "tcp: connect to " + host + ":" + std::to_string(port) +
                         " failed after " +
                         std::to_string(cfg.max_retries + 1) + " attempts: " +
                         errno_str("connect", last_err));
}

bool TcpSocket::wait_readable(double timeout_s) {
  return poll_fd(fd_, POLLIN, timeout_s, "poll(wait)");
}

void TcpSocket::send_all(std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    if (!poll_fd(fd_, POLLOUT, cfg_.write_timeout_s, "poll(send)"))
      throw ChannelError(ChannelErrorKind::kTimeout, 0, 0, 0,
                         "tcp: send stalled beyond " +
                             std::to_string(cfg_.write_timeout_s) + "s");
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE -> kPeerDead, not
    // kill the process with SIGPIPE.
    const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      throw_errno("send", errno);
    }
    off += static_cast<std::size_t>(n);
  }
}

void TcpSocket::recv_exact(std::span<std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    if (!poll_fd(fd_, POLLIN, cfg_.read_timeout_s, "poll(recv)"))
      throw ChannelError(ChannelErrorKind::kTimeout, 0, 0, 0,
                         "tcp: no data within " +
                             std::to_string(cfg_.read_timeout_s) + "s");
    const ssize_t n = ::recv(fd_, data.data() + off, data.size() - off, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      throw_errno("recv", errno);
    }
    if (n == 0)
      throw ChannelError(ChannelErrorKind::kPeerDead, 0, 0, 0,
                         off == 0 ? "tcp: peer closed the connection"
                                  : "tcp: peer closed mid-frame (" +
                                        std::to_string(off) + " of " +
                                        std::to_string(data.size()) +
                                        " bytes read)");
    off += static_cast<std::size_t>(n);
  }
}

TcpListener::TcpListener(const std::string& host, std::uint16_t port,
                         const SocketConfig& cfg)
    : cfg_(cfg) {
  fd_ = open_tcp_socket();
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const sockaddr_in addr = make_addr(host, port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw_errno(("bind " + host + ":" + std::to_string(port)).c_str(), err);
  }
  if (::listen(fd_, SOMAXCONN) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw_errno("listen", err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener() { close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_), cfg_(other.cfg_) {
  other.fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    cfg_ = other.cfg_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpSocket TcpListener::accept() {
  // Bound by the whole connect ladder a well-behaved peer may spend:
  // (retries+1) connect attempts plus the geometric backoff between them.
  double deadline_s = (cfg_.max_retries + 1) * cfg_.connect_timeout_s;
  double backoff_s = cfg_.backoff_base_s;
  for (std::size_t i = 0; i < cfg_.max_retries; ++i) {
    deadline_s += backoff_s;
    backoff_s *= 2.0;
  }
  if (!poll_fd(fd_, POLLIN, deadline_s, "poll(accept)"))
    throw ChannelError(ChannelErrorKind::kTimeout, 0, 0, 0,
                       "tcp: no inbound connection within " +
                           std::to_string(deadline_s) + "s");
  int fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) throw_errno("accept", errno);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpSocket{fd, cfg_};
}

void write_frame(TcpSocket& sock, std::uint32_t seq,
                 std::span<const std::uint8_t> payload) {
  const std::vector<std::uint8_t> framed = encode_frame(seq, payload);
  sock.send_all(framed);
}

Frame read_frame(TcpSocket& sock) {
  std::uint8_t len_bytes[4];
  sock.recv_exact(len_bytes);
  const std::uint32_t total = static_cast<std::uint32_t>(len_bytes[0]) |
                              (static_cast<std::uint32_t>(len_bytes[1]) << 8) |
                              (static_cast<std::uint32_t>(len_bytes[2]) << 16) |
                              (static_cast<std::uint32_t>(len_bytes[3]) << 24);
  if (total < kFrameHeaderBytes || total > kMaxFrameBytes)
    throw ChannelError(ChannelErrorKind::kBadFrame, 0, 0, 0,
                       "tcp: garbage frame length " + std::to_string(total) +
                           " (valid: " + std::to_string(kFrameHeaderBytes) +
                           ".." + std::to_string(kMaxFrameBytes) + ")");
  std::vector<std::uint8_t> framed(total);
  std::memcpy(framed.data(), len_bytes, 4);
  sock.recv_exact(std::span<std::uint8_t>{framed}.subspan(4));
  return decode_frame(framed);
}

}  // namespace ppgr::net::tcp

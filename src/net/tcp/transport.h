// net::tcp::TcpTransport — the real-socket implementation of the Router's
// Transport seam (DESIGN.md §5f): one OS process per party, a full mesh of
// TCP connections over the PR 5 frame codec.
//
// Connection policy: every party listens; for each pair the *higher*-id
// party dials the lower-id one (so the initiator, party 0, only accepts).
// Each freshly-connected socket exchanges a hello frame — protocol magic +
// version, session id, party count, sender id — and any disagreement is a
// typed ChannelError before a single protocol byte moves: two processes
// launched with different instance files or session ids refuse to talk.
//
// After the handshake one receive thread per peer reads frames off its
// socket, checks CRC and per-link sequence numbers, and feeds a FIFO
// inbox; Transport::receive() blocks on that inbox under the configured
// read timeout. Sends are synchronous framed writes. Every failure mode —
// connect ladder exhausted, read timeout, peer close, garbage frame —
// surfaces as the same typed ChannelError taxonomy the fault-injection
// simulator established, so the protocol drivers need no transport-
// specific error handling at all.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/tcp/socket.h"
#include "net/transport.h"

namespace ppgr::net::tcp {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Parses "host:port". Throws std::invalid_argument.
[[nodiscard]] Endpoint parse_endpoint(const std::string& s);

struct TcpTransportConfig {
  std::size_t party = 0;    // own party id (0 = initiator)
  std::size_t parties = 0;  // total party count (n participants + initiator)
  Endpoint listen;          // own listening endpoint
  /// Peer endpoints indexed by party id; entries for ids > `party` may be
  /// empty (those peers dial us). Own entry is ignored.
  std::vector<Endpoint> peers;
  /// Session id every process must agree on (derive it from the public
  /// instance parameters + seed); the hello handshake rejects mismatches.
  std::uint64_t session = 0;
  SocketConfig socket{};
};

class TcpTransport final : public Transport {
 public:
  /// Binds the listener only — call connect() to establish the mesh (the
  /// two-step split lets a launcher bring all listeners up before anyone
  /// dials).
  explicit TcpTransport(TcpTransportConfig cfg);
  ~TcpTransport() override;

  /// Establishes the full mesh: dials every lower-id peer (with the
  /// exponential-backoff ladder — peers may not be up yet), accepts every
  /// higher-id peer, exchanges and validates hello frames, then starts the
  /// per-peer receive threads. Throws ChannelError on any failure.
  void connect();

  /// Closes every socket and joins the receive threads. Idempotent;
  /// called by the destructor.
  void shutdown();

  [[nodiscard]] bool local(std::size_t party) const override {
    return party == cfg_.party;
  }
  void send(std::size_t src, std::size_t dst,
            const std::vector<std::uint8_t>& payload) override;
  [[nodiscard]] std::vector<std::uint8_t> receive(std::size_t src,
                                                  std::size_t dst) override;
  [[nodiscard]] FaultStats stats() const override;

  [[nodiscard]] const TcpTransportConfig& config() const { return cfg_; }
  /// The actually-bound listen port (differs from cfg when 0 was asked).
  [[nodiscard]] std::uint16_t listen_port() const;
  /// Overrides one peer endpoint between construction and connect() — a
  /// port-0 mesh (tests, single-host launchers) learns the real ports only
  /// after every listener is bound. Throws once connected.
  void set_peer(std::size_t id, Endpoint ep);

 private:
  struct Peer {
    TcpSocket sock;
    std::uint32_t tx_seq = 0;
    std::mutex send_mu;
    // Inbox fed by the receive thread, drained by receive().
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<std::uint8_t>> inbox;
    std::uint32_t rx_seq = 0;
    bool closed = false;
    std::optional<ChannelError> error;
    std::thread reader;
  };

  void handshake_send(Peer& peer);
  void handshake_check(std::size_t expect_party, Peer& peer);
  void reader_loop(std::size_t peer_id);

  TcpTransportConfig cfg_;
  std::optional<TcpListener> listener_;
  std::vector<std::unique_ptr<Peer>> peers_;  // indexed by party id
  bool connected_ = false;
  std::atomic<bool> stop_{false};

  mutable std::mutex stats_mu_;
  FaultStats stats_;
};

}  // namespace ppgr::net::tcp

#include "sss/topk.h"

#include <stdexcept>

namespace ppgr::sss {

TopKResult probabilistic_topk(MpcEngine& engine, std::span<const Nat> values,
                              std::size_t k, std::size_t value_bits) {
  const auto& f = engine.field();
  const std::size_t n = values.size();
  if (n == 0 || k == 0 || k > n)
    throw std::invalid_argument("probabilistic_topk: need 1 <= k <= n");
  const bool counting = engine.mode() == MpcEngine::Mode::kCountOnly;
  if (!counting) {
    const Nat bound = Nat::pow2(value_bits);
    if (bound >= f.p().shr(1))
      throw std::invalid_argument("probabilistic_topk: field too small");
    for (const Nat& v : values) {
      if (v >= bound)
        throw std::invalid_argument("probabilistic_topk: value out of range");
    }
  }

  const MpcCosts before = engine.costs();
  TopKResult out;

  // Share the inputs.
  std::vector<ShareVec> shared(n);
  for (std::size_t i = 0; i < n; ++i)
    shared[i] = engine.input(counting ? f.zero() : f.to(values[i]));

  // Binary search for the smallest threshold T with |{x_i >= T}| <= k;
  // every iteration opens only the count.
  Nat lo;                            // inclusive
  Nat hi = Nat::pow2(value_bits);    // exclusive
  std::vector<ShareVec> above(n);    // [x_i >= T] for the last probed T
  Nat best_threshold;                // largest T seen with count >= k
  bool have_best = false;

  auto count_above = [&](const Nat& threshold) -> std::size_t {
    // [x_i >= T] = 1 - [x_i < T]; comparisons run in parallel, opening the
    // sum costs a single round.
    const ShareVec t_shared = engine.constant(f.to(threshold));
    ShareVec sum = engine.constant(f.zero());
    for (std::size_t i = 0; i < n; ++i) {
      const ShareVec lt = engine.less_than(shared[i], t_shared);
      above[i] = engine.add_const(engine.neg(lt), f.one());
      if (!counting) sum = engine.add(sum, above[i]);
    }
    const Nat opened = engine.open(sum);
    if (counting) return k;  // pretend exact hit; counts dominated by l iters
    const Nat std_rep = f.from(opened);
    if (!std_rep.fits_limb() || std_rep.to_limb() > n)
      throw std::logic_error("probabilistic_topk: corrupt count");
    return static_cast<std::size_t>(std_rep.to_limb());
  };

  if (counting) {
    // Data-independent worst case: value_bits iterations.
    for (std::size_t it = 0; it < value_bits; ++it) {
      (void)count_above(Nat{1});
      ++out.iterations;
    }
  } else {
    while (lo < hi) {
      const Nat mid = Nat::add(lo, hi).shr(1);
      if (mid == lo) break;
      ++out.iterations;
      const std::size_t cnt = count_above(mid);
      if (cnt >= k) {
        best_threshold = mid;
        have_best = true;
        if (cnt == k) {
          out.exact = true;
          break;
        }
        lo = mid;  // too many above: raise the threshold
      } else {
        hi = mid;  // too few: lower it
      }
    }
    if (!have_best) {
      // k == n or all values equal minimum: everything qualifies.
      best_threshold = Nat{};
      have_best = true;
      out.exact = (k == n);
    }

    // Recompute membership at the final threshold and open the bits.
    (void)count_above(best_threshold.is_zero() ? Nat{} : best_threshold);
    out.in_topk.assign(n, false);
    if (best_threshold.is_zero()) {
      out.in_topk.assign(n, true);
      out.selected = n;
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        const Nat bit = f.from(engine.open(above[i]));
        out.in_topk[i] = bit.is_one();
        out.selected += out.in_topk[i] ? 1 : 0;
      }
    }
    if (out.selected == k) out.exact = true;
  }

  out.costs = engine.costs() - before;
  return out;
}

}  // namespace ppgr::sss

#include "sss/sort_network.h"

#include <algorithm>

namespace ppgr::sss {

std::vector<Layer> batcher_network(std::size_t n) {
  // Iterative odd-even merge sort, valid for arbitrary n (Batcher's
  // construction with out-of-range comparators dropped). Each (p, k) step
  // touches disjoint wires and forms one parallel layer.
  std::vector<Layer> net;
  if (n < 2) return net;
  for (std::size_t p = 1; p < n; p <<= 1) {
    for (std::size_t k = p; k >= 1; k >>= 1) {
      Layer layer;
      for (std::size_t j = k % p; j + k < n; j += 2 * k) {
        for (std::size_t i = 0; i <= std::min(k - 1, n - j - k - 1); ++i) {
          // Only compare wires within the same 2p-block of the merge.
          if ((i + j) / (2 * p) == (i + j + k) / (2 * p)) {
            layer.push_back(Comparator{i + j, i + j + k});
          }
        }
      }
      if (!layer.empty()) net.push_back(std::move(layer));
    }
  }
  return net;
}

std::size_t comparator_count(const std::vector<Layer>& net) {
  std::size_t total = 0;
  for (const Layer& layer : net) total += layer.size();
  return total;
}

}  // namespace ppgr::sss

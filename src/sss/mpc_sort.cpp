#include "sss/mpc_sort.h"

#include <stdexcept>

namespace ppgr::sss {

RankSortResult mpc_rank_sort(MpcEngine& engine, std::span<const Nat> values) {
  const auto& f = engine.field();
  const std::size_t n = values.size();
  if (n == 0) throw std::invalid_argument("mpc_rank_sort: no values");
  const bool counting = engine.mode() == MpcEngine::Mode::kCountOnly;
  if (!counting) {
    const Nat half = f.p().shr(1);
    for (const Nat& v : values) {
      if (v >= half)
        throw std::invalid_argument(
            "mpc_rank_sort: values must be < p/2 for comparisons");
    }
  }

  const MpcCosts before = engine.costs();
  RankSortResult out;
  const auto net = batcher_network(n);
  out.network_depth = net.size();
  out.comparators = comparator_count(net);

  // Share values and identity tags (tag i = i+1).
  std::vector<ShareVec> vals(n), tags(n);
  for (std::size_t i = 0; i < n; ++i) {
    vals[i] = engine.input(counting ? f.zero() : f.to(values[i]));
    tags[i] = engine.input(f.to(Nat{i + 1}));
  }

  // Measure the parallel rounds of one comparator (comparison + swap round)
  // by metering the first one.
  std::uint64_t rounds_per_comparator = 0;

  for (const Layer& layer : net) {
    for (const Comparator& c : layer) {
      const std::uint64_t rounds_before = engine.costs().rounds;
      // Descending comparator: put the larger element on the lo wire.
      // swap_bit = [v_lo < v_hi]; then x += s*(other - x) on both wires for
      // both the value and the tag (two multiplications, one round).
      const ShareVec swap_bit = engine.less_than(vals[c.lo], vals[c.hi]);
      if (counting) {
        std::vector<std::pair<ShareVec, ShareVec>> batch(2);
        (void)engine.mul_many(batch);
      } else {
        const ShareVec dv = engine.sub(vals[c.hi], vals[c.lo]);
        const ShareVec dt = engine.sub(tags[c.hi], tags[c.lo]);
        const std::pair<ShareVec, ShareVec> pairs[] = {{swap_bit, dv},
                                                       {swap_bit, dt}};
        const auto prods = engine.mul_many(pairs);
        vals[c.lo] = engine.add(vals[c.lo], prods[0]);
        vals[c.hi] = engine.sub(vals[c.hi], prods[0]);
        tags[c.lo] = engine.add(tags[c.lo], prods[1]);
        tags[c.hi] = engine.sub(tags[c.hi], prods[1]);
      }
      if (rounds_per_comparator == 0)
        rounds_per_comparator = engine.costs().rounds - rounds_before;
    }
  }

  // Open the tags: position i holds the (i+1)-th largest value's tag.
  if (!counting) {
    out.ranks.assign(n, 0);
    for (std::size_t pos = 0; pos < n; ++pos) {
      const Nat tag = f.from(engine.open(tags[pos]));
      if (!tag.fits_limb() || tag.to_limb() == 0 || tag.to_limb() > n)
        throw std::logic_error("mpc_rank_sort: corrupt tag");
      out.ranks[tag.to_limb() - 1] = pos + 1;
    }
  } else {
    for (std::size_t pos = 0; pos < n; ++pos) (void)engine.open({});
  }

  out.costs = engine.costs() - before;
  // All comparators of a layer run concurrently; tag openings are one
  // parallel round; the 2n input deals are one more.
  out.parallel_rounds = out.network_depth * rounds_per_comparator + 2;
  return out;
}

}  // namespace ppgr::sss

// Honest-execution simulator for Shamir-based multiparty computation.
//
// This is the substrate of the paper's baseline "SS framework": BGW/GRR
// multiplication with degree reduction (Gennaro–Rabin–Rabin), joint random
// sharings, the square-root trick for joint random *bits*, the
// public-vs-bitwise-shared less-than circuit, the Nishide–Ohta-style
// comparison built from three half-range tests, and (in mpc_sort.h) the
// sorting network on top.
//
// The engine simulates all n parties in-process (the HBC model makes honest
// execution sufficient for both correctness tests and cost accounting) and
// meters everything the paper's Sec. VI-B analysis talks about:
// multiplication-protocol invocations, openings, communication rounds and
// bytes.
//
// Two modes:
//  - kReal: shares are computed; results are correct; counters are exact for
//    the execution (including randomized retries).
//  - kCountOnly: no share arithmetic at all; counters advance as if every
//    randomized retry succeeded on the first try (the expected case; see
//    EXPERIMENTS.md). This mode prices protocols at parameter scales where
//    full execution would take hours — same idea as CountingGroup for the
//    HE frameworks.
#pragma once

#include <cstdint>
#include <vector>

#include "sss/shamir.h"

namespace ppgr::sss {

struct MpcCosts {
  std::uint64_t mults = 0;       // GRR multiplication invocations
  std::uint64_t opens = 0;       // reconstructions toward all parties
  std::uint64_t deals = 0;       // dealer sharings
  std::uint64_t rounds = 0;      // sequential communication rounds
  std::uint64_t bytes = 0;       // field-element bytes on the wire (total)
  std::uint64_t rand_bits = 0;   // joint random bits generated
  std::uint64_t comparisons = 0; // less_than invocations

  MpcCosts& operator+=(const MpcCosts& o);
  friend MpcCosts operator-(MpcCosts a, const MpcCosts& b);
};

class MpcEngine {
 public:
  enum class Mode { kReal, kCountOnly };

  /// n parties, threshold t (max colluders), requires n >= 2t+1 for
  /// multiplication (the degree-reduction constraint the paper cites when
  /// noting SS tolerates fewer colluders than its own protocol).
  MpcEngine(const FpCtx& f, std::size_t n, std::size_t t, Rng& rng,
            Mode mode = Mode::kReal);

  [[nodiscard]] const FpCtx& field() const { return f_; }
  [[nodiscard]] std::size_t parties() const { return n_; }
  [[nodiscard]] std::size_t threshold() const { return t_; }
  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] const MpcCosts& costs() const { return costs_; }
  void reset_costs() { costs_ = MpcCosts{}; }

  // --- sharing and opening ---
  /// Dealer-based input sharing (1 round).
  [[nodiscard]] ShareVec input(const Nat& secret);
  /// Public constant as a degenerate (degree-0) sharing. Free.
  [[nodiscard]] ShareVec constant(const Nat& value) const;
  /// Open a shared value to all parties (1 round).
  [[nodiscard]] Nat open(const ShareVec& x);

  // --- linear operations (local, free) ---
  [[nodiscard]] ShareVec add(const ShareVec& a, const ShareVec& b) const;
  [[nodiscard]] ShareVec sub(const ShareVec& a, const ShareVec& b) const;
  [[nodiscard]] ShareVec add_const(const ShareVec& a, const Nat& c) const;
  [[nodiscard]] ShareVec mul_const(const ShareVec& a, const Nat& c) const;
  [[nodiscard]] ShareVec neg(const ShareVec& a) const;

  // --- interactive primitives ---
  /// GRR multiplication with degree reduction (1 round).
  [[nodiscard]] ShareVec mul(const ShareVec& a, const ShareVec& b);
  /// Batch of independent multiplications in one parallel round.
  [[nodiscard]] std::vector<ShareVec> mul_many(
      std::span<const std::pair<ShareVec, ShareVec>> pairs);
  /// Jointly generated uniform random sharing (1 round).
  [[nodiscard]] ShareVec rand_share();
  /// k joint random bits via the square-root trick, batched (3 rounds).
  [[nodiscard]] std::vector<ShareVec> rand_bits_many(std::size_t k);
  [[nodiscard]] ShareVec rand_bit() { return rand_bits_many(1)[0]; }

  // --- comparison toolbox (Nishide–Ohta style) ---
  /// Bitwise-shared uniform random r in [0, p): bits (LSB first) plus the
  /// composed value Σ 2^i b_i.
  struct BitwiseRandom {
    std::vector<ShareVec> bits;
    ShareVec value;
  };
  [[nodiscard]] BitwiseRandom rand_bitwise();
  /// Shared bit [c < r] for public c and bitwise-shared r.
  [[nodiscard]] ShareVec bit_lt_public(const Nat& c,
                                       std::span<const ShareVec> r_bits);
  /// Shared bit x mod 2.
  [[nodiscard]] ShareVec lsb(const ShareVec& x);
  /// Shared bit [x < p/2].
  [[nodiscard]] ShareVec half_test(const ShareVec& x);
  /// Shared bit [a < b], for a, b whose difference magnitude is < p/2.
  [[nodiscard]] ShareVec less_than(const ShareVec& a, const ShareVec& b);

 private:
  void charge_round(std::uint64_t messages);
  [[nodiscard]] bool counting() const { return mode_ == Mode::kCountOnly; }

  const FpCtx& f_;
  std::size_t n_;
  std::size_t t_;
  Rng& rng_;
  Mode mode_;
  MpcCosts costs_;
  std::vector<Nat> lambda_all_;  // Lagrange coefficients at 0 for points 1..n
};

}  // namespace ppgr::sss

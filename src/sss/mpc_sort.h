// Multiparty rank sort over secret-shared values — the paper's "SS
// framework" phase 2 (Sec. VII): the β values produced by the secure gain
// computation are fed, secret-shared, into a Jónsson-style sorting network
// built from Nishide–Ohta comparisons; each comparator conditionally swaps
// both the shared value and a shared party tag, and after the network the
// tags are opened position by position to yield the full ranking.
//
// Note the privacy contrast with the paper's own protocol: this baseline
// reveals the entire ranking permutation to every party (tags in sorted
// order), whereas the identity-unlinkable protocol reveals only each party's
// own rank. That difference is intentional — it is the baseline the paper
// measures against, not a privacy-equivalent alternative.
#pragma once

#include "sss/mpc_engine.h"
#include "sss/sort_network.h"

namespace ppgr::sss {

struct RankSortResult {
  /// ranks[i] = rank of input value i, 1-based, 1 = largest value
  /// (non-increasing order as in Def. 2 of the paper). Empty in kCountOnly
  /// mode.
  std::vector<std::size_t> ranks;
  /// Exact metered costs of the sort (excludes whatever the caller ran
  /// before).
  MpcCosts costs;
  /// Layers in the comparator network.
  std::size_t network_depth = 0;
  /// Total comparators.
  std::size_t comparators = 0;
  /// Analytic parallel round count: comparators in one layer run
  /// concurrently, so this is depth * rounds-per-comparator + the final
  /// opening round. This is the number that reproduces the paper's
  /// O((279l+5) n (log n)^2)-rounds comparison in Sec. VI-B.
  std::uint64_t parallel_rounds = 0;
};

/// Sorts the given values (standard field representatives, each < p/2) in
/// non-increasing order under MPC and returns each input's rank. In
/// kCountOnly mode the values' contents are ignored but counts are exact.
[[nodiscard]] RankSortResult mpc_rank_sort(MpcEngine& engine,
                                           std::span<const Nat> values);

}  // namespace ppgr::sss

#include "sss/shamir.h"

#include <stdexcept>

namespace ppgr::sss {

namespace {

// Horner evaluation of the coefficient vector at x (field elements).
Nat eval_poly(const FpCtx& f, const std::vector<Nat>& coeffs, const Nat& x) {
  Nat acc = f.zero();
  for (std::size_t i = coeffs.size(); i-- > 0;)
    acc = f.add(f.mul(acc, x), coeffs[i]);
  return acc;
}

}  // namespace

ShareVec share_secret(const FpCtx& f, const Nat& secret, std::size_t t,
                      std::size_t n, Rng& rng) {
  if (n == 0 || t >= n)
    throw std::invalid_argument("share_secret: need 0 <= t < n");
  if (Nat{n} >= f.p())
    throw std::invalid_argument("share_secret: field too small for n parties");
  std::vector<Nat> coeffs(t + 1);
  coeffs[0] = secret;
  for (std::size_t i = 1; i <= t; ++i) coeffs[i] = f.random(rng);
  ShareVec shares(n);
  for (std::size_t i = 0; i < n; ++i)
    shares[i] = eval_poly(f, coeffs, f.to(Nat{i + 1}));
  return shares;
}

std::vector<Nat> lagrange_at_zero(const FpCtx& f,
                                  std::span<const std::size_t> xs) {
  const std::size_t k = xs.size();
  std::vector<Nat> lambda(k);
  for (std::size_t i = 0; i < k; ++i) {
    // λ_i = Π_{j != i} x_j / (x_j - x_i).
    Nat num = f.one(), den = f.one();
    const Nat xi = f.to(Nat{xs[i]});
    for (std::size_t j = 0; j < k; ++j) {
      if (j == i) continue;
      const Nat xj = f.to(Nat{xs[j]});
      num = f.mul(num, xj);
      den = f.mul(den, f.sub(xj, xi));
    }
    lambda[i] = f.div(num, den);
  }
  return lambda;
}

Nat reconstruct(const FpCtx& f, const ShareVec& shares, std::size_t t) {
  if (shares.size() < t + 1)
    throw std::invalid_argument("reconstruct: not enough shares");
  std::vector<std::pair<std::size_t, Nat>> pts;
  pts.reserve(t + 1);
  for (std::size_t i = 0; i <= t; ++i) pts.emplace_back(i + 1, shares[i]);
  return reconstruct_subset(f, pts);
}

Nat reconstruct_subset(const FpCtx& f,
                       std::span<const std::pair<std::size_t, Nat>> points) {
  if (points.empty())
    throw std::invalid_argument("reconstruct_subset: no points");
  std::vector<std::size_t> xs;
  xs.reserve(points.size());
  for (const auto& [x, _] : points) xs.push_back(x);
  const auto lambda = lagrange_at_zero(f, xs);
  Nat acc = f.zero();
  for (std::size_t i = 0; i < points.size(); ++i)
    acc = f.add(acc, f.mul(lambda[i], points[i].second));
  return acc;
}

}  // namespace ppgr::sss

// Shamir (t, n) secret sharing over a prime field.
//
// Substrate for the paper's baseline: the "SS framework" (Sec. VII) runs the
// Jónsson-style multiparty sort, whose comparisons (Nishide–Ohta) are built
// from exactly these primitives. Party "evaluation points" are 1..n; a value
// is shared by a degree-t polynomial with the secret at 0; any t+1 shares
// reconstruct, any t reveal nothing.
#pragma once

#include <vector>

#include "mpz/fp.h"
#include "mpz/rng.h"

namespace ppgr::sss {

using mpz::FpCtx;
using mpz::Nat;
using mpz::Rng;

/// shares[i] is party (i+1)'s share (evaluation at x = i+1).
using ShareVec = std::vector<Nat>;

/// Split `secret` (field element) into n shares with threshold t
/// (t+1 shares needed to reconstruct; degree-t polynomial).
[[nodiscard]] ShareVec share_secret(const FpCtx& f, const Nat& secret,
                                    std::size_t t, std::size_t n, Rng& rng);

/// Lagrange coefficients λ_i for interpolating at x=0 from the evaluation
/// points xs (1-based party indices).
[[nodiscard]] std::vector<Nat> lagrange_at_zero(const FpCtx& f,
                                                std::span<const std::size_t> xs);

/// Reconstruct from the first t+1 shares (throws if fewer provided).
[[nodiscard]] Nat reconstruct(const FpCtx& f, const ShareVec& shares,
                              std::size_t t);

/// Reconstruct from an arbitrary subset {(party_index, share)}.
[[nodiscard]] Nat reconstruct_subset(
    const FpCtx& f, std::span<const std::pair<std::size_t, Nat>> points);

}  // namespace ppgr::sss

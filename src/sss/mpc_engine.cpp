#include "sss/mpc_engine.h"

#include <stdexcept>

namespace ppgr::sss {

MpcCosts& MpcCosts::operator+=(const MpcCosts& o) {
  mults += o.mults;
  opens += o.opens;
  deals += o.deals;
  rounds += o.rounds;
  bytes += o.bytes;
  rand_bits += o.rand_bits;
  comparisons += o.comparisons;
  return *this;
}

MpcCosts operator-(MpcCosts a, const MpcCosts& b) {
  a.mults -= b.mults;
  a.opens -= b.opens;
  a.deals -= b.deals;
  a.rounds -= b.rounds;
  a.bytes -= b.bytes;
  a.rand_bits -= b.rand_bits;
  a.comparisons -= b.comparisons;
  return a;
}

MpcEngine::MpcEngine(const FpCtx& f, std::size_t n, std::size_t t, Rng& rng,
                     Mode mode)
    : f_(f), n_(n), t_(t), rng_(rng), mode_(mode) {
  if (n < 2 || t == 0 || n < 2 * t + 1)
    throw std::invalid_argument("MpcEngine: need n >= 2t+1, t >= 1");
  std::vector<std::size_t> xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = i + 1;
  lambda_all_ = lagrange_at_zero(f_, xs);
}

void MpcEngine::charge_round(std::uint64_t messages) {
  costs_.rounds += 1;
  costs_.bytes += messages * ((f_.bits() + 7) / 8);
}

ShareVec MpcEngine::input(const Nat& secret) {
  costs_.deals += 1;
  charge_round(n_ - 1);
  if (counting()) return {};
  return share_secret(f_, secret, t_, n_, rng_);
}

ShareVec MpcEngine::constant(const Nat& value) const {
  if (counting()) return {};
  return ShareVec(n_, value);
}

Nat MpcEngine::open(const ShareVec& x) {
  costs_.opens += 1;
  charge_round(n_ * (n_ - 1));
  if (counting()) return f_.zero();
  return reconstruct(f_, x, t_);
}

ShareVec MpcEngine::add(const ShareVec& a, const ShareVec& b) const {
  if (counting()) return {};
  ShareVec out(n_);
  for (std::size_t i = 0; i < n_; ++i) out[i] = f_.add(a[i], b[i]);
  return out;
}

ShareVec MpcEngine::sub(const ShareVec& a, const ShareVec& b) const {
  if (counting()) return {};
  ShareVec out(n_);
  for (std::size_t i = 0; i < n_; ++i) out[i] = f_.sub(a[i], b[i]);
  return out;
}

ShareVec MpcEngine::add_const(const ShareVec& a, const Nat& c) const {
  if (counting()) return {};
  ShareVec out(n_);
  for (std::size_t i = 0; i < n_; ++i) out[i] = f_.add(a[i], c);
  return out;
}

ShareVec MpcEngine::mul_const(const ShareVec& a, const Nat& c) const {
  if (counting()) return {};
  ShareVec out(n_);
  for (std::size_t i = 0; i < n_; ++i) out[i] = f_.mul(a[i], c);
  return out;
}

ShareVec MpcEngine::neg(const ShareVec& a) const {
  if (counting()) return {};
  ShareVec out(n_);
  for (std::size_t i = 0; i < n_; ++i) out[i] = f_.neg(a[i]);
  return out;
}

ShareVec MpcEngine::mul(const ShareVec& a, const ShareVec& b) {
  const std::pair<ShareVec, ShareVec> p{a, b};
  return mul_many(std::span{&p, 1})[0];
}

std::vector<ShareVec> MpcEngine::mul_many(
    std::span<const std::pair<ShareVec, ShareVec>> pairs) {
  // GRR: each party multiplies its shares locally (degree 2t), re-shares the
  // product with degree t, and everyone recombines the sub-shares with the
  // Lagrange coefficients for x=0 over points 1..n (n >= 2t+1 makes the
  // degree-2t polynomial determined). One parallel round for the whole batch.
  costs_.mults += pairs.size();
  charge_round(pairs.size() * n_ * (n_ - 1));
  std::vector<ShareVec> out;
  out.reserve(pairs.size());
  if (counting()) {
    out.resize(pairs.size());
    return out;
  }
  for (const auto& [a, b] : pairs) {
    ShareVec result(n_, f_.zero());
    for (std::size_t i = 0; i < n_; ++i) {
      const Nat di = f_.mul(a[i], b[i]);
      const ShareVec sub = share_secret(f_, di, t_, n_, rng_);
      for (std::size_t j = 0; j < n_; ++j)
        result[j] = f_.add(result[j], f_.mul(lambda_all_[i], sub[j]));
    }
    out.push_back(std::move(result));
  }
  return out;
}

ShareVec MpcEngine::rand_share() {
  // Every party deals a random sharing; the sum is uniform and unknown to
  // any t-subset.
  costs_.deals += n_;
  charge_round(n_ * (n_ - 1));
  if (counting()) return {};
  ShareVec acc(n_, f_.zero());
  for (std::size_t i = 0; i < n_; ++i) {
    const ShareVec contrib = share_secret(f_, f_.random(rng_), t_, n_, rng_);
    for (std::size_t j = 0; j < n_; ++j) acc[j] = f_.add(acc[j], contrib[j]);
  }
  return acc;
}

std::vector<ShareVec> MpcEngine::rand_bits_many(std::size_t k) {
  // Square-root trick (Damgård et al.): r random, open r^2 (retry on 0),
  // s = canonical sqrt of the opened square, b = (r/s + 1)/2.
  costs_.rand_bits += k;
  const Nat inv2 = f_.inv(f_.to(Nat{2}));
  std::vector<ShareVec> bits(k);
  // In counting mode assume first-try success (retry probability 1/p).
  std::vector<ShareVec> rs(k);
  std::vector<std::pair<ShareVec, ShareVec>> squares;
  squares.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    rs[i] = rand_share();
    squares.emplace_back(rs[i], rs[i]);
  }
  auto r2 = mul_many(squares);
  for (std::size_t i = 0; i < k; ++i) {
    Nat opened = open(r2[i]);
    if (counting()) continue;
    while (f_.is_zero(opened)) {  // r == 0: retry this one
      rs[i] = rand_share();
      opened = open(mul(rs[i], rs[i]));
    }
    const auto root = f_.sqrt(opened);
    if (!root) throw std::logic_error("rand_bits_many: square has no root");
    // Canonical root: the one with standard representative <= (p-1)/2, so
    // all parties agree without communication.
    Nat s = *root;
    const Nat s_std = f_.from(s);
    if (s_std > f_.p().shr(1)) s = f_.neg(s);
    bits[i] = mul_const(add_const(mul_const(rs[i], f_.inv(s)), f_.one()), inv2);
  }
  return bits;
}

MpcEngine::BitwiseRandom MpcEngine::rand_bitwise() {
  const std::size_t l = f_.bits();
  for (;;) {
    BitwiseRandom out;
    out.bits = rand_bits_many(l);
    if (!counting()) {
      out.value = constant(f_.zero());
      for (std::size_t i = 0; i < l; ++i) {
        const Nat pow2 = f_.to(Nat::pow2(i));
        out.value = add(out.value, mul_const(out.bits[i], pow2));
      }
    }
    // Rejection: keep only r < p. [p-1 < r] must open to 0.
    const Nat p_minus_1 = Nat::sub(f_.p(), Nat{1});
    const ShareVec too_big = bit_lt_public(p_minus_1, out.bits);
    const Nat flag = open(too_big);
    if (counting()) return out;  // expected-case: first try accepted
    if (f_.is_zero(flag)) return out;
  }
}

ShareVec MpcEngine::bit_lt_public(const Nat& c,
                                  std::span<const ShareVec> r_bits) {
  const std::size_t l = r_bits.size();
  // e_i = [r_i == c_i] (linear in r_i for public c_i);
  // suffix_i = Π_{j>i} e_j; term_i = [r_i > c_i] * suffix_i;
  // [c < r] = Σ term_i  (at most one term fires).
  if (counting()) {
    // Suffix chain: l-1 sequential multiplications; terms: one parallel
    // round of at most l multiplications (only bits with c_i = 0 need one;
    // charge the worst case so counts are data-independent).
    for (std::size_t i = 0; i + 1 < l; ++i) (void)mul({}, {});
    std::vector<std::pair<ShareVec, ShareVec>> batch(l);
    (void)mul_many(batch);
    return {};
  }
  std::vector<ShareVec> e(l);
  for (std::size_t i = 0; i < l; ++i) {
    const bool ci = c.bit(i);
    // e_i = 1 - r_i if c_i == 0, else r_i.
    e[i] = ci ? r_bits[i]
              : add_const(neg(r_bits[i]), f_.one());
  }
  // suffix[i] = Π_{j > i} e_j, suffix[l-1] = 1.
  std::vector<ShareVec> suffix(l);
  suffix[l - 1] = constant(f_.one());
  for (std::size_t i = l - 1; i-- > 0;) suffix[i] = mul(suffix[i + 1], e[i + 1]);
  // term_i = r_i * suffix_i where c_i == 0 (r_i > c_i possible only there);
  // batch them in one parallel round (pad with dummies so the charged count
  // matches the data-independent counting mode).
  std::vector<std::pair<ShareVec, ShareVec>> batch;
  for (std::size_t i = 0; i < l; ++i) {
    // r_i > c_i is possible only where c_i == 0; multiply a zero dummy at
    // the other positions so the charged count stays data-independent.
    batch.emplace_back(c.bit(i) ? constant(f_.zero()) : r_bits[i], suffix[i]);
  }
  const auto terms = mul_many(batch);
  ShareVec acc = constant(f_.zero());
  for (std::size_t i = 0; i < l; ++i) {
    if (!c.bit(i)) acc = add(acc, terms[i]);
  }
  return acc;
}

ShareVec MpcEngine::lsb(const ShareVec& x) {
  // Open c = x + r with bitwise-known r; then x0 = c0 XOR r0 XOR [c < r]
  // (p odd, so the wrap adds p which is odd).
  const BitwiseRandom r = rand_bitwise();
  if (counting()) {
    (void)open({});  // the c opening
    (void)bit_lt_public(f_.zero(), std::vector<ShareVec>(f_.bits()));
    (void)mul({}, {});  // the final XOR
    return {};
  }
  const Nat c = f_.from(open(add(x, r.value)));
  const ShareVec wrap = bit_lt_public(c, r.bits);
  // t1 = c0 XOR r0 (linear: c0 public).
  const ShareVec t1 = c.bit(0) ? add_const(neg(r.bits[0]), f_.one()) : r.bits[0];
  // x0 = t1 XOR wrap = t1 + wrap - 2*t1*wrap.
  const ShareVec prod = mul(t1, wrap);
  return sub(add(t1, wrap), mul_const(prod, f_.to(Nat{2})));
}

ShareVec MpcEngine::half_test(const ShareVec& x) {
  // [x < p/2] = 1 - LSB(2x): doubling wraps (odd result) iff x >= p/2.
  if (counting()) {
    (void)lsb({});
    return {};
  }
  return add_const(neg(lsb(mul_const(x, f_.to(Nat{2})))), f_.one());
}

ShareVec MpcEngine::less_than(const ShareVec& a, const ShareVec& b) {
  costs_.comparisons += 1;
  // Nishide–Ohta: three half-range tests,
  //   w = [a < p/2], x = [b < p/2], y = [(a - b) mod p < p/2];
  // [a < b] = (1-y)*(w*x + (1-w)*(1-x)) + w*(1-x).
  const ShareVec w = half_test(a);
  const ShareVec x = half_test(b);
  if (counting()) {
    (void)half_test({});
    (void)mul({}, {});
    (void)mul({}, {});
    return {};
  }
  const ShareVec y = half_test(sub(a, b));
  const ShareVec wx = mul(w, x);
  // s = w*x + (1-w)*(1-x) = 1 - w - x + 2wx.
  const ShareVec s = add_const(
      add(neg(add(w, x)), mul_const(wx, f_.to(Nat{2}))), f_.one());
  const ShareVec not_y = add_const(neg(y), f_.one());
  const ShareVec first = mul(not_y, s);
  const ShareVec w_not_x = sub(w, wx);
  return add(first, w_not_x);
}

}  // namespace ppgr::sss

// Probabilistic privacy-preserving top-k (after Burkhart & Dimitropoulos,
// ICCCN'10 — reference [4] of the paper).
//
// The paper's related work discusses this protocol as the fast-but-
// imperfect alternative to full multiparty sorting: it finds the k largest
// of n shared values by binary-searching a public threshold T and securely
// counting how many values lie above it; only aggregate counts (and the
// final membership bits) are opened. It is probabilistic in the paper's
// sense: with duplicated values at the cut, no threshold separates exactly
// k elements and the protocol terminates with a superset ("cannot be
// guaranteed to terminate with a correct result every time").
//
// Cost: at most `value_bits` iterations of n parallel comparisons — O(l·n)
// comparisons versus the full sort's O(n (log n)^2); the trade-off this
// extension quantifies in bench/ext_topk.
#pragma once

#include "sss/mpc_engine.h"

namespace ppgr::sss {

struct TopKResult {
  /// in_topk[i] == true iff value i made the cut. In the inexact case the
  /// set can be larger than k (ties at the threshold are all included, like
  /// the paper's own framework handles rank-k ties).
  std::vector<bool> in_topk;
  std::size_t selected = 0;
  std::size_t iterations = 0;
  /// false when duplicate values at the cut made an exact size-k set
  /// impossible.
  bool exact = false;
  MpcCosts costs;
};

/// Finds the k largest of `values` (standard representatives, each
/// < 2^value_bits and < p/2). Opens only per-iteration counts and the final
/// membership bits. Requires 1 <= k <= values.size().
[[nodiscard]] TopKResult probabilistic_topk(MpcEngine& engine,
                                            std::span<const Nat> values,
                                            std::size_t k,
                                            std::size_t value_bits);

}  // namespace ppgr::sss

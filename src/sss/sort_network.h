// Batcher odd-even merge sorting network.
//
// The paper's baseline sorting protocol (Jónsson, Kreitz, Uddin) embeds a
// secure comparison primitive into a data-independent sorting network that is
// "a variant of the merge sort algorithm" with O(n (log n)^2) comparators —
// i.e. Batcher's odd-even merge sort, which is what we generate here. The
// network is grouped into parallel layers: comparators within a layer touch
// disjoint wires and can run in one communication super-round, which is how
// the analytic round count of the SS framework is computed.
#pragma once

#include <cstddef>
#include <vector>

namespace ppgr::sss {

struct Comparator {
  std::size_t lo;
  std::size_t hi;  // lo < hi
};

/// One parallel layer: comparators with pairwise-disjoint wires.
using Layer = std::vector<Comparator>;

/// Batcher odd-even merge sort network for `n` wires (any n >= 1).
[[nodiscard]] std::vector<Layer> batcher_network(std::size_t n);

/// Total comparator count of a network.
[[nodiscard]] std::size_t comparator_count(const std::vector<Layer>& net);

/// Applies the network to a plain vector (ascending). Reference semantics
/// for tests and for documenting the comparator orientation.
template <typename T>
void apply_network_plain(const std::vector<Layer>& net, std::vector<T>& v) {
  for (const Layer& layer : net) {
    for (const Comparator& c : layer) {
      if (v[c.hi] < v[c.lo]) std::swap(v[c.lo], v[c.hi]);
    }
  }
}

}  // namespace ppgr::sss

file(REMOVE_RECURSE
  "libppgr_benchcore.a"
)

# Empty compiler generated dependencies file for ppgr_benchcore.
# This may be replaced when dependencies are built.

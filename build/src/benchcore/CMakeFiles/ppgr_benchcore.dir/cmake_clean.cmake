file(REMOVE_RECURSE
  "CMakeFiles/ppgr_benchcore.dir/calibrate.cpp.o"
  "CMakeFiles/ppgr_benchcore.dir/calibrate.cpp.o.d"
  "CMakeFiles/ppgr_benchcore.dir/model.cpp.o"
  "CMakeFiles/ppgr_benchcore.dir/model.cpp.o.d"
  "libppgr_benchcore.a"
  "libppgr_benchcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppgr_benchcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

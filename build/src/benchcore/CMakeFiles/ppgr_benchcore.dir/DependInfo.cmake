
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchcore/calibrate.cpp" "src/benchcore/CMakeFiles/ppgr_benchcore.dir/calibrate.cpp.o" "gcc" "src/benchcore/CMakeFiles/ppgr_benchcore.dir/calibrate.cpp.o.d"
  "/root/repo/src/benchcore/model.cpp" "src/benchcore/CMakeFiles/ppgr_benchcore.dir/model.cpp.o" "gcc" "src/benchcore/CMakeFiles/ppgr_benchcore.dir/model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ppgr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ppgr_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/group/CMakeFiles/ppgr_group.dir/DependInfo.cmake"
  "/root/repo/build/src/dotprod/CMakeFiles/ppgr_dotprod.dir/DependInfo.cmake"
  "/root/repo/build/src/sss/CMakeFiles/ppgr_sss.dir/DependInfo.cmake"
  "/root/repo/build/src/mpz/CMakeFiles/ppgr_mpz.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ppgr_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ppgr_runtime.dir/trace.cpp.o"
  "CMakeFiles/ppgr_runtime.dir/trace.cpp.o.d"
  "CMakeFiles/ppgr_runtime.dir/wire.cpp.o"
  "CMakeFiles/ppgr_runtime.dir/wire.cpp.o.d"
  "libppgr_runtime.a"
  "libppgr_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppgr_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

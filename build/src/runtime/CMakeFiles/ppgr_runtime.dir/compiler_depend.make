# Empty compiler generated dependencies file for ppgr_runtime.
# This may be replaced when dependencies are built.

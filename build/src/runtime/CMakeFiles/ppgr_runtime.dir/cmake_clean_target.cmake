file(REMOVE_RECURSE
  "libppgr_runtime.a"
)

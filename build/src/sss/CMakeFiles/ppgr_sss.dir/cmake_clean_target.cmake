file(REMOVE_RECURSE
  "libppgr_sss.a"
)

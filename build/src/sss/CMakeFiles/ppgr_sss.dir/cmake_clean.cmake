file(REMOVE_RECURSE
  "CMakeFiles/ppgr_sss.dir/mpc_engine.cpp.o"
  "CMakeFiles/ppgr_sss.dir/mpc_engine.cpp.o.d"
  "CMakeFiles/ppgr_sss.dir/mpc_sort.cpp.o"
  "CMakeFiles/ppgr_sss.dir/mpc_sort.cpp.o.d"
  "CMakeFiles/ppgr_sss.dir/shamir.cpp.o"
  "CMakeFiles/ppgr_sss.dir/shamir.cpp.o.d"
  "CMakeFiles/ppgr_sss.dir/sort_network.cpp.o"
  "CMakeFiles/ppgr_sss.dir/sort_network.cpp.o.d"
  "CMakeFiles/ppgr_sss.dir/topk.cpp.o"
  "CMakeFiles/ppgr_sss.dir/topk.cpp.o.d"
  "libppgr_sss.a"
  "libppgr_sss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppgr_sss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ppgr_sss.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sss/mpc_engine.cpp" "src/sss/CMakeFiles/ppgr_sss.dir/mpc_engine.cpp.o" "gcc" "src/sss/CMakeFiles/ppgr_sss.dir/mpc_engine.cpp.o.d"
  "/root/repo/src/sss/mpc_sort.cpp" "src/sss/CMakeFiles/ppgr_sss.dir/mpc_sort.cpp.o" "gcc" "src/sss/CMakeFiles/ppgr_sss.dir/mpc_sort.cpp.o.d"
  "/root/repo/src/sss/shamir.cpp" "src/sss/CMakeFiles/ppgr_sss.dir/shamir.cpp.o" "gcc" "src/sss/CMakeFiles/ppgr_sss.dir/shamir.cpp.o.d"
  "/root/repo/src/sss/sort_network.cpp" "src/sss/CMakeFiles/ppgr_sss.dir/sort_network.cpp.o" "gcc" "src/sss/CMakeFiles/ppgr_sss.dir/sort_network.cpp.o.d"
  "/root/repo/src/sss/topk.cpp" "src/sss/CMakeFiles/ppgr_sss.dir/topk.cpp.o" "gcc" "src/sss/CMakeFiles/ppgr_sss.dir/topk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpz/CMakeFiles/ppgr_mpz.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

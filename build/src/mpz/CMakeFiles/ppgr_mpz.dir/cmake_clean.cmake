file(REMOVE_RECURSE
  "CMakeFiles/ppgr_mpz.dir/fp.cpp.o"
  "CMakeFiles/ppgr_mpz.dir/fp.cpp.o.d"
  "CMakeFiles/ppgr_mpz.dir/modarith.cpp.o"
  "CMakeFiles/ppgr_mpz.dir/modarith.cpp.o.d"
  "CMakeFiles/ppgr_mpz.dir/mont.cpp.o"
  "CMakeFiles/ppgr_mpz.dir/mont.cpp.o.d"
  "CMakeFiles/ppgr_mpz.dir/nat.cpp.o"
  "CMakeFiles/ppgr_mpz.dir/nat.cpp.o.d"
  "CMakeFiles/ppgr_mpz.dir/prime.cpp.o"
  "CMakeFiles/ppgr_mpz.dir/prime.cpp.o.d"
  "CMakeFiles/ppgr_mpz.dir/rng.cpp.o"
  "CMakeFiles/ppgr_mpz.dir/rng.cpp.o.d"
  "CMakeFiles/ppgr_mpz.dir/sint.cpp.o"
  "CMakeFiles/ppgr_mpz.dir/sint.cpp.o.d"
  "libppgr_mpz.a"
  "libppgr_mpz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppgr_mpz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ppgr_mpz.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libppgr_mpz.a"
)

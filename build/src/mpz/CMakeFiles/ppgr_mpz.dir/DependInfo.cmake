
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpz/fp.cpp" "src/mpz/CMakeFiles/ppgr_mpz.dir/fp.cpp.o" "gcc" "src/mpz/CMakeFiles/ppgr_mpz.dir/fp.cpp.o.d"
  "/root/repo/src/mpz/modarith.cpp" "src/mpz/CMakeFiles/ppgr_mpz.dir/modarith.cpp.o" "gcc" "src/mpz/CMakeFiles/ppgr_mpz.dir/modarith.cpp.o.d"
  "/root/repo/src/mpz/mont.cpp" "src/mpz/CMakeFiles/ppgr_mpz.dir/mont.cpp.o" "gcc" "src/mpz/CMakeFiles/ppgr_mpz.dir/mont.cpp.o.d"
  "/root/repo/src/mpz/nat.cpp" "src/mpz/CMakeFiles/ppgr_mpz.dir/nat.cpp.o" "gcc" "src/mpz/CMakeFiles/ppgr_mpz.dir/nat.cpp.o.d"
  "/root/repo/src/mpz/prime.cpp" "src/mpz/CMakeFiles/ppgr_mpz.dir/prime.cpp.o" "gcc" "src/mpz/CMakeFiles/ppgr_mpz.dir/prime.cpp.o.d"
  "/root/repo/src/mpz/rng.cpp" "src/mpz/CMakeFiles/ppgr_mpz.dir/rng.cpp.o" "gcc" "src/mpz/CMakeFiles/ppgr_mpz.dir/rng.cpp.o.d"
  "/root/repo/src/mpz/sint.cpp" "src/mpz/CMakeFiles/ppgr_mpz.dir/sint.cpp.o" "gcc" "src/mpz/CMakeFiles/ppgr_mpz.dir/sint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

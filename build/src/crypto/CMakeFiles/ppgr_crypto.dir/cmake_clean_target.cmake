file(REMOVE_RECURSE
  "libppgr_crypto.a"
)

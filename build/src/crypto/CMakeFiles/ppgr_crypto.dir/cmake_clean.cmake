file(REMOVE_RECURSE
  "CMakeFiles/ppgr_crypto.dir/codec.cpp.o"
  "CMakeFiles/ppgr_crypto.dir/codec.cpp.o.d"
  "CMakeFiles/ppgr_crypto.dir/elgamal.cpp.o"
  "CMakeFiles/ppgr_crypto.dir/elgamal.cpp.o.d"
  "CMakeFiles/ppgr_crypto.dir/paillier.cpp.o"
  "CMakeFiles/ppgr_crypto.dir/paillier.cpp.o.d"
  "CMakeFiles/ppgr_crypto.dir/schnorr_proof.cpp.o"
  "CMakeFiles/ppgr_crypto.dir/schnorr_proof.cpp.o.d"
  "libppgr_crypto.a"
  "libppgr_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppgr_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/codec.cpp" "src/crypto/CMakeFiles/ppgr_crypto.dir/codec.cpp.o" "gcc" "src/crypto/CMakeFiles/ppgr_crypto.dir/codec.cpp.o.d"
  "/root/repo/src/crypto/elgamal.cpp" "src/crypto/CMakeFiles/ppgr_crypto.dir/elgamal.cpp.o" "gcc" "src/crypto/CMakeFiles/ppgr_crypto.dir/elgamal.cpp.o.d"
  "/root/repo/src/crypto/paillier.cpp" "src/crypto/CMakeFiles/ppgr_crypto.dir/paillier.cpp.o" "gcc" "src/crypto/CMakeFiles/ppgr_crypto.dir/paillier.cpp.o.d"
  "/root/repo/src/crypto/schnorr_proof.cpp" "src/crypto/CMakeFiles/ppgr_crypto.dir/schnorr_proof.cpp.o" "gcc" "src/crypto/CMakeFiles/ppgr_crypto.dir/schnorr_proof.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/group/CMakeFiles/ppgr_group.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ppgr_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/mpz/CMakeFiles/ppgr_mpz.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

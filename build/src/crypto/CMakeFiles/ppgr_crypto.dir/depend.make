# Empty dependencies file for ppgr_crypto.
# This may be replaced when dependencies are built.

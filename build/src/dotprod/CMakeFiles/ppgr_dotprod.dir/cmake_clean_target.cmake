file(REMOVE_RECURSE
  "libppgr_dotprod.a"
)

# Empty dependencies file for ppgr_dotprod.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ppgr_dotprod.dir/dot_product.cpp.o"
  "CMakeFiles/ppgr_dotprod.dir/dot_product.cpp.o.d"
  "libppgr_dotprod.a"
  "libppgr_dotprod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppgr_dotprod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/group/ec_group.cpp" "src/group/CMakeFiles/ppgr_group.dir/ec_group.cpp.o" "gcc" "src/group/CMakeFiles/ppgr_group.dir/ec_group.cpp.o.d"
  "/root/repo/src/group/fixed_base.cpp" "src/group/CMakeFiles/ppgr_group.dir/fixed_base.cpp.o" "gcc" "src/group/CMakeFiles/ppgr_group.dir/fixed_base.cpp.o.d"
  "/root/repo/src/group/group.cpp" "src/group/CMakeFiles/ppgr_group.dir/group.cpp.o" "gcc" "src/group/CMakeFiles/ppgr_group.dir/group.cpp.o.d"
  "/root/repo/src/group/mock_group.cpp" "src/group/CMakeFiles/ppgr_group.dir/mock_group.cpp.o" "gcc" "src/group/CMakeFiles/ppgr_group.dir/mock_group.cpp.o.d"
  "/root/repo/src/group/schnorr_group.cpp" "src/group/CMakeFiles/ppgr_group.dir/schnorr_group.cpp.o" "gcc" "src/group/CMakeFiles/ppgr_group.dir/schnorr_group.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpz/CMakeFiles/ppgr_mpz.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ppgr_group.dir/ec_group.cpp.o"
  "CMakeFiles/ppgr_group.dir/ec_group.cpp.o.d"
  "CMakeFiles/ppgr_group.dir/fixed_base.cpp.o"
  "CMakeFiles/ppgr_group.dir/fixed_base.cpp.o.d"
  "CMakeFiles/ppgr_group.dir/group.cpp.o"
  "CMakeFiles/ppgr_group.dir/group.cpp.o.d"
  "CMakeFiles/ppgr_group.dir/mock_group.cpp.o"
  "CMakeFiles/ppgr_group.dir/mock_group.cpp.o.d"
  "CMakeFiles/ppgr_group.dir/schnorr_group.cpp.o"
  "CMakeFiles/ppgr_group.dir/schnorr_group.cpp.o.d"
  "libppgr_group.a"
  "libppgr_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppgr_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

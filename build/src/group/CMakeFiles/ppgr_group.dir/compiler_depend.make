# Empty compiler generated dependencies file for ppgr_group.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libppgr_group.a"
)

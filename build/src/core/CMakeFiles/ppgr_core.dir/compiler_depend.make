# Empty compiler generated dependencies file for ppgr_core.
# This may be replaced when dependencies are built.

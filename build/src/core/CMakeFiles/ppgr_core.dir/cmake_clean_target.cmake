file(REMOVE_RECURSE
  "libppgr_core.a"
)

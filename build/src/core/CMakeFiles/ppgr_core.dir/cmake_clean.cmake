file(REMOVE_RECURSE
  "CMakeFiles/ppgr_core.dir/codec.cpp.o"
  "CMakeFiles/ppgr_core.dir/codec.cpp.o.d"
  "CMakeFiles/ppgr_core.dir/framework.cpp.o"
  "CMakeFiles/ppgr_core.dir/framework.cpp.o.d"
  "CMakeFiles/ppgr_core.dir/spec.cpp.o"
  "CMakeFiles/ppgr_core.dir/spec.cpp.o.d"
  "CMakeFiles/ppgr_core.dir/ss_framework.cpp.o"
  "CMakeFiles/ppgr_core.dir/ss_framework.cpp.o.d"
  "libppgr_core.a"
  "libppgr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppgr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ppgr_net.dir/simulator.cpp.o"
  "CMakeFiles/ppgr_net.dir/simulator.cpp.o.d"
  "CMakeFiles/ppgr_net.dir/topology.cpp.o"
  "CMakeFiles/ppgr_net.dir/topology.cpp.o.d"
  "libppgr_net.a"
  "libppgr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppgr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

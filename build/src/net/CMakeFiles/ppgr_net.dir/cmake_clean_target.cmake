file(REMOVE_RECURSE
  "libppgr_net.a"
)

# Empty dependencies file for ppgr_net.
# This may be replaced when dependencies are built.

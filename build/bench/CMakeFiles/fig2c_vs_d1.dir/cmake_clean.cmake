file(REMOVE_RECURSE
  "CMakeFiles/fig2c_vs_d1.dir/fig2c_vs_d1.cpp.o"
  "CMakeFiles/fig2c_vs_d1.dir/fig2c_vs_d1.cpp.o.d"
  "fig2c_vs_d1"
  "fig2c_vs_d1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2c_vs_d1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig2c_vs_d1.
# This may be replaced when dependencies are built.

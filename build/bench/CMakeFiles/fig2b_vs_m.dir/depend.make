# Empty dependencies file for fig2b_vs_m.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig2b_vs_m.dir/fig2b_vs_m.cpp.o"
  "CMakeFiles/fig2b_vs_m.dir/fig2b_vs_m.cpp.o.d"
  "fig2b_vs_m"
  "fig2b_vs_m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_vs_m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig2d_vs_h.dir/fig2d_vs_h.cpp.o"
  "CMakeFiles/fig2d_vs_h.dir/fig2d_vs_h.cpp.o.d"
  "fig2d_vs_h"
  "fig2d_vs_h.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2d_vs_h.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

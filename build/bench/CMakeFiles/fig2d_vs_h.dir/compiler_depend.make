# Empty compiler generated dependencies file for fig2d_vs_h.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_paillier.dir/ablation_paillier.cpp.o"
  "CMakeFiles/ablation_paillier.dir/ablation_paillier.cpp.o.d"
  "ablation_paillier"
  "ablation_paillier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_paillier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_paillier.
# This may be replaced when dependencies are built.

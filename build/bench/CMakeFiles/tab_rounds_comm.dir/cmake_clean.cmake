file(REMOVE_RECURSE
  "CMakeFiles/tab_rounds_comm.dir/tab_rounds_comm.cpp.o"
  "CMakeFiles/tab_rounds_comm.dir/tab_rounds_comm.cpp.o.d"
  "tab_rounds_comm"
  "tab_rounds_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_rounds_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tab_rounds_comm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig3a_seclevel.dir/fig3a_seclevel.cpp.o"
  "CMakeFiles/fig3a_seclevel.dir/fig3a_seclevel.cpp.o.d"
  "fig3a_seclevel"
  "fig3a_seclevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_seclevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

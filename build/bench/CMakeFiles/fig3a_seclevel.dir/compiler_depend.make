# Empty compiler generated dependencies file for fig3a_seclevel.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig3b_network.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig3b_network.dir/fig3b_network.cpp.o"
  "CMakeFiles/fig3b_network.dir/fig3b_network.cpp.o.d"
  "fig3b_network"
  "fig3b_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

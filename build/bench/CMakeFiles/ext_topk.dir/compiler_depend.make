# Empty compiler generated dependencies file for ext_topk.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ext_topk.dir/ext_topk.cpp.o"
  "CMakeFiles/ext_topk.dir/ext_topk.cpp.o.d"
  "ext_topk"
  "ext_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_dotproduct.dir/ablation_dotproduct.cpp.o"
  "CMakeFiles/ablation_dotproduct.dir/ablation_dotproduct.cpp.o.d"
  "ablation_dotproduct"
  "ablation_dotproduct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dotproduct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_dotproduct.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_fixedbase.dir/ablation_fixedbase.cpp.o"
  "CMakeFiles/ablation_fixedbase.dir/ablation_fixedbase.cpp.o.d"
  "ablation_fixedbase"
  "ablation_fixedbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fixedbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

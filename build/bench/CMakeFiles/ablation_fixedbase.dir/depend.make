# Empty dependencies file for ablation_fixedbase.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig2a_vs_n.dir/fig2a_vs_n.cpp.o"
  "CMakeFiles/fig2a_vs_n.dir/fig2a_vs_n.cpp.o.d"
  "fig2a_vs_n"
  "fig2a_vs_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_vs_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

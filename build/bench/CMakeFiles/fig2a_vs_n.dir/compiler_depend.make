# Empty compiler generated dependencies file for fig2a_vs_n.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/micro_groupops.dir/micro_groupops.cpp.o"
  "CMakeFiles/micro_groupops.dir/micro_groupops.cpp.o.d"
  "micro_groupops"
  "micro_groupops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_groupops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

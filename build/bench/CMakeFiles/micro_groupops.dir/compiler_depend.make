# Empty compiler generated dependencies file for micro_groupops.
# This may be replaced when dependencies are built.

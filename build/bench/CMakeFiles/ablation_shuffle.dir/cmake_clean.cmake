file(REMOVE_RECURSE
  "CMakeFiles/ablation_shuffle.dir/ablation_shuffle.cpp.o"
  "CMakeFiles/ablation_shuffle.dir/ablation_shuffle.cpp.o.d"
  "ablation_shuffle"
  "ablation_shuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sss_shamir_test.dir/sss_shamir_test.cpp.o"
  "CMakeFiles/sss_shamir_test.dir/sss_shamir_test.cpp.o.d"
  "sss_shamir_test"
  "sss_shamir_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sss_shamir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/mpz_modular_test.dir/mpz_modular_test.cpp.o"
  "CMakeFiles/mpz_modular_test.dir/mpz_modular_test.cpp.o.d"
  "mpz_modular_test"
  "mpz_modular_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpz_modular_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mpz_modular_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/benchcore_test.dir/benchcore_test.cpp.o"
  "CMakeFiles/benchcore_test.dir/benchcore_test.cpp.o.d"
  "benchcore_test"
  "benchcore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchcore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mpz_nat_test.
# This may be replaced when dependencies are built.

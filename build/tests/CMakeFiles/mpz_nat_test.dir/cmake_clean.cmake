file(REMOVE_RECURSE
  "CMakeFiles/mpz_nat_test.dir/mpz_nat_test.cpp.o"
  "CMakeFiles/mpz_nat_test.dir/mpz_nat_test.cpp.o.d"
  "mpz_nat_test"
  "mpz_nat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpz_nat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ec_exhaustive_test.dir/ec_exhaustive_test.cpp.o"
  "CMakeFiles/ec_exhaustive_test.dir/ec_exhaustive_test.cpp.o.d"
  "ec_exhaustive_test"
  "ec_exhaustive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_exhaustive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ec_exhaustive_test.
# This may be replaced when dependencies are built.

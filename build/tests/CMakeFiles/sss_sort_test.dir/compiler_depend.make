# Empty compiler generated dependencies file for sss_sort_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sss_sort_test.dir/sss_sort_test.cpp.o"
  "CMakeFiles/sss_sort_test.dir/sss_sort_test.cpp.o.d"
  "sss_sort_test"
  "sss_sort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sss_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sss_topk_test.dir/sss_topk_test.cpp.o"
  "CMakeFiles/sss_topk_test.dir/sss_topk_test.cpp.o.d"
  "sss_topk_test"
  "sss_topk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sss_topk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sss_topk_test.
# This may be replaced when dependencies are built.

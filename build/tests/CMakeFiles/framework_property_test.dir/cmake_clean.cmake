file(REMOVE_RECURSE
  "CMakeFiles/framework_property_test.dir/framework_property_test.cpp.o"
  "CMakeFiles/framework_property_test.dir/framework_property_test.cpp.o.d"
  "framework_property_test"
  "framework_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/framework_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for framework_property_test.
# This may be replaced when dependencies are built.

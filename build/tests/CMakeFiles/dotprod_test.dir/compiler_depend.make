# Empty compiler generated dependencies file for dotprod_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dotprod_test.dir/dotprod_test.cpp.o"
  "CMakeFiles/dotprod_test.dir/dotprod_test.cpp.o.d"
  "dotprod_test"
  "dotprod_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dotprod_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

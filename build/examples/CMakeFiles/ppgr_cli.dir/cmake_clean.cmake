file(REMOVE_RECURSE
  "CMakeFiles/ppgr_cli.dir/ppgr_cli.cpp.o"
  "CMakeFiles/ppgr_cli.dir/ppgr_cli.cpp.o.d"
  "ppgr_cli"
  "ppgr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppgr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

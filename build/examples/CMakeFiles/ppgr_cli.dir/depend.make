# Empty dependencies file for ppgr_cli.
# This may be replaced when dependencies are built.

# Empty dependencies file for recruiting.
# This may be replaced when dependencies are built.

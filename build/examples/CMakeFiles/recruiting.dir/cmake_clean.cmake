file(REMOVE_RECURSE
  "CMakeFiles/recruiting.dir/recruiting.cpp.o"
  "CMakeFiles/recruiting.dir/recruiting.cpp.o.d"
  "recruiting"
  "recruiting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recruiting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/interest_matching.dir/interest_matching.cpp.o"
  "CMakeFiles/interest_matching.dir/interest_matching.cpp.o.d"
  "interest_matching"
  "interest_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interest_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

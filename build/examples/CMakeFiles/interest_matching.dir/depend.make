# Empty dependencies file for interest_matching.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/online_marketing.dir/online_marketing.cpp.o"
  "CMakeFiles/online_marketing.dir/online_marketing.cpp.o.d"
  "online_marketing"
  "online_marketing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_marketing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for online_marketing.
# This may be replaced when dependencies are built.

// The paper's Sec. I motivating scenario: a health-and-nutrition company
// (initiator) runs an online promotion and wants the k most
// representative participants for a free-trial program — without learning
// anything about everyone else, and without revealing how it scores people.
//
// Demonstrates:
//  - "equal-to" attributes (age, blood pressure) vs "greater-than"
//    attributes (number of friends, annual income);
//  - what each role observes during the protocol (the privacy ledger);
//  - the initiator-side over-claim check of phase 3.
#include <cstdio>

#include "core/framework.h"
#include "mpz/rng.h"

int main() {
  using namespace ppgr;

  constexpr std::size_t kParticipants = 12;
  constexpr std::size_t kWinners = 3;

  // Questionnaire: [age, blood pressure, friends, income(k$)].
  core::ProblemSpec spec{.m = 4, .t = 2, .d1 = 10, .d2 = 6, .h = 12};
  const core::AttrVec criterion{30, 115, 0, 0};  // target demographic
  const core::AttrVec weights{20, 8, 3, 1};      // trade secret!

  // Demo parameters: a small Schnorr group keeps this example snappy on a
  // laptop; swap in GroupId::kEcP192 / kDl2048 for production security.
  const auto group = group::make_group(group::GroupId::kDlTest256);
  core::FrameworkConfig cfg;
  cfg.spec = spec;
  cfg.n = kParticipants;
  cfg.k = kWinners;
  cfg.group = group.get();
  cfg.dot_field = &core::default_dot_field();

  // Synthesize a population around the target demographic.
  mpz::ChaChaRng rng{2026};
  std::vector<core::AttrVec> infos;
  infos.reserve(kParticipants);
  for (std::size_t j = 0; j < kParticipants; ++j) {
    infos.push_back({18 + rng.below_u64(50),    // age
                     95 + rng.below_u64(70),    // blood pressure
                     rng.below_u64(300),        // friends
                     20 + rng.below_u64(200)}); // income
  }

  std::printf("Online marketing promotion: %zu applicants, %zu trial "
              "slots\n\n", kParticipants, kWinners);
  const auto result = core::run_framework(cfg, criterion, weights, infos, rng);

  std::printf("The company receives submissions from:");
  for (const auto id : result.submitted_ids) std::printf(" P%zu", id);
  std::printf("\n\nWinning profiles (the only vectors the company sees):\n");
  for (const auto id : result.submitted_ids) {
    const auto& v = infos[id - 1];
    std::printf("  P%-3zu rank %zu: age %llu, bp %llu, %llu friends, "
                "$%lluk income\n",
                id, result.ranks[id - 1],
                static_cast<unsigned long long>(v[0]),
                static_cast<unsigned long long>(v[1]),
                static_cast<unsigned long long>(v[2]),
                static_cast<unsigned long long>(v[3]));
  }

  std::printf("\nPrivacy ledger (who learned what):\n");
  std::printf("  company   : top-%zu vectors + their ranks; NOT the other "
              "%zu vectors,\n              gains or identities-to-rank "
              "links\n", kWinners, kParticipants - kWinners);
  std::printf("  winner    : her own rank; NOT the scoring weights or "
              "criterion\n");
  std::printf("  others    : their own rank only; their data never left "
              "their machine\n              in the clear\n");
  std::printf("  colluders : up to n-2 colluding participants cannot link a "
              "hidden\n              participant's data to her identity "
              "(Lemma 4)\n");
  std::printf("\nCost: %zu rounds, %.1f MB of protocol traffic\n",
              result.trace.rounds(),
              static_cast<double>(result.trace.total_bytes()) / 1e6);
  return 0;
}

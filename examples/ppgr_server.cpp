// ppgr_server — serve a batch of ranking requests through the multi-session
// engine (src/engine/): FIFO admission, a shared thread pool and the shared
// crypto precompute cache, with a deterministic rolled-up JSON export.
//
// Usage:
//   ppgr_server <request-file> [--seed N] [--max-in-flight N]
//               [--parallelism N] [--rollup-out FILE]
//   ppgr_server --demo [...]
//
// Request format (one directive per line, '#' comments; `session` opens a
// new request and the other directives fill the current one):
//
//   session <id>
//   framework <he|ss>               # default he
//   group <dl-1024|...|dl-test-256> # default dl-test-256
//   spec <m> <t> <d1> <d2> <h>
//   k <top-k>
//   threshold <t>                   # ss only: collusion threshold
//   criterion <v1> ... <vm>
//   weights   <w1> ... <wm>
//   participant <v1> ... <vm>       # one line per participant
//
// Example (two sessions sharing the engine):
//   session 1
//   spec 4 2 8 4 8
//   k 2
//   criterion 35 120 0 0
//   weights 10 5 2 1
//   participant 34 118 90 55
//   participant 52 160 20 90
//   participant 35 121 40 40
//   session 2
//   spec 4 2 8 4 8
//   k 1
//   criterion 0 0 0 0
//   weights 1 1 1 1
//   participant 10 20 30 40
//   participant 40 30 20 10
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_flags.h"
#include "engine/engine.h"
#include "engine/introspect.h"
#include "engine/session_log.h"

namespace {

using namespace ppgr;

group::GroupId parse_group(const std::string& name) {
  static const std::map<std::string, group::GroupId> kNames = {
      {"dl-1024", group::GroupId::kDl1024},
      {"dl-2048", group::GroupId::kDl2048},
      {"dl-3072", group::GroupId::kDl3072},
      {"ecc-p192", group::GroupId::kEcP192},
      {"ecc-p224", group::GroupId::kEcP224},
      {"ecc-p256", group::GroupId::kEcP256},
      {"dl-test-256", group::GroupId::kDlTest256},
  };
  const auto it = kNames.find(name);
  if (it == kNames.end())
    throw std::invalid_argument("unknown group '" + name + "'");
  return it->second;
}

core::AttrVec parse_values(std::istringstream& line) {
  core::AttrVec values;
  std::uint64_t v;
  while (line >> v) values.push_back(v);
  if (!line.eof()) throw std::invalid_argument("non-numeric attribute value");
  return values;
}

/// parse_file never aborts on a malformed entry: the offending request is
/// dropped (every bad line reported in `errors`) and the rest of the batch
/// still runs — the exit-code contract in --help turns a nonempty `errors`
/// into exit 3.
struct ParseOutcome {
  std::vector<engine::RankingRequest> reqs;
  std::vector<std::string> errors;
};

ParseOutcome parse_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  ParseOutcome out;
  std::vector<char> bad;  // parallel to out.reqs
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const auto comment = raw.find('#');
    if (comment != std::string::npos) raw.resize(comment);
    std::istringstream line{raw};
    std::string directive;
    if (!(line >> directive)) continue;  // blank line
    try {
      if (directive == "session") {
        engine::RankingRequest req;
        const bool ok = static_cast<bool>(line >> req.session_id);
        out.reqs.push_back(std::move(req));
        bad.push_back(ok ? 0 : 1);
        if (!ok) throw std::invalid_argument("session needs an id");
        continue;
      }
      if (out.reqs.empty())
        throw std::invalid_argument("'" + directive +
                                    "' before the first 'session' line");
      engine::RankingRequest& req = out.reqs.back();
      if (directive == "framework") {
        std::string name;
        line >> name;
        if (name == "he") req.framework = engine::FrameworkKind::kHe;
        else if (name == "ss") req.framework = engine::FrameworkKind::kSs;
        else throw std::invalid_argument("framework must be 'he' or 'ss'");
      } else if (directive == "group") {
        std::string name;
        line >> name;
        req.group = parse_group(name);
      } else if (directive == "spec") {
        if (!(line >> req.spec.m >> req.spec.t >> req.spec.d1 >> req.spec.d2 >>
              req.spec.h))
          throw std::invalid_argument("spec needs: m t d1 d2 h");
      } else if (directive == "k") {
        if (!(line >> req.k)) throw std::invalid_argument("k needs a number");
      } else if (directive == "threshold") {
        if (!(line >> req.ss_threshold))
          throw std::invalid_argument("threshold needs a number");
      } else if (directive == "criterion") {
        req.v0 = parse_values(line);
      } else if (directive == "weights") {
        req.w = parse_values(line);
      } else if (directive == "participant") {
        req.infos.push_back(parse_values(line));
      } else if (directive == "fault-plan") {
        std::string spec;
        std::getline(line, spec);
        const auto start = spec.find_first_not_of(" \t");
        if (start == std::string::npos)
          throw std::invalid_argument("fault-plan needs a spec string");
        req.fault_plan = net::parse_fault_plan(spec.substr(start));
      } else if (directive == "degrade-on-dropout") {
        req.degrade_on_dropout = true;
      } else {
        throw std::invalid_argument("unknown directive '" + directive + "'");
      }
    } catch (const std::exception& e) {
      out.errors.push_back(path + ":" + std::to_string(lineno) + ": " +
                           e.what());
      if (!bad.empty()) bad.back() = 1;
    }
  }
  if (out.reqs.empty() && out.errors.empty())
    throw std::runtime_error(path + ": no 'session' lines");
  std::vector<engine::RankingRequest> good;
  good.reserve(out.reqs.size());
  for (std::size_t i = 0; i < out.reqs.size(); ++i) {
    if (bad[i] != 0) {
      out.errors.push_back(path + ": session " +
                           std::to_string(out.reqs[i].session_id) +
                           " dropped (malformed entry, see above)");
      continue;
    }
    good.push_back(std::move(out.reqs[i]));
  }
  out.reqs = std::move(good);
  return out;
}

// A built-in batch (3 HE + 1 SS session) so the engine can be exercised
// without writing a request file: ppgr_server --demo
std::vector<engine::RankingRequest> demo_batch() {
  std::vector<engine::RankingRequest> reqs;
  for (std::uint64_t sid = 1; sid <= 4; ++sid) {
    engine::RankingRequest req;
    req.session_id = sid;
    req.spec = core::ProblemSpec{.m = 4, .t = 2, .d1 = 8, .d2 = 6, .h = 8};
    req.k = 2;
    if (sid == 4) req.framework = engine::FrameworkKind::kSs;
    mpz::ChaChaRng rng{1000 + sid};
    const std::size_t n = sid == 4 ? 5 : 4;
    req.v0.resize(req.spec.m);
    req.w.resize(req.spec.m);
    for (auto& x : req.v0) x = rng.below_u64(std::uint64_t{1} << req.spec.d1);
    for (auto& x : req.w) x = rng.below_u64(std::uint64_t{1} << req.spec.d2);
    for (std::size_t j = 0; j < n; ++j) {
      core::AttrVec v(req.spec.m);
      for (auto& x : v) x = rng.below_u64(std::uint64_t{1} << req.spec.d1);
      req.infos.push_back(std::move(v));
    }
    reqs.push_back(std::move(req));
  }
  return reqs;
}

// Derives the per-session variant of an export path: the session id is
// inserted before the extension ("out/m.json" -> "out/m.7.json"; no
// extension: appended).
std::string per_session_path(const std::string& path, std::uint64_t sid) {
  const auto dot = path.rfind('.');
  const auto slash = path.find_last_of('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash))
    return path + "." + std::to_string(sid);
  return path.substr(0, dot) + "." + std::to_string(sid) + path.substr(dot);
}

void print_usage(const char* prog, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s <request-file> [--seed N] [--max-in-flight N]\n"
      "       [--parallelism N] [--rollup-out FILE] [per-session exports]\n"
      "       [live telemetry]\n"
      "       %s --demo [same options]\n"
      "\n"
      "  --seed N          engine seed; every session's randomness derives\n"
      "                    from (seed, session id), so a fixed request file\n"
      "                    gives bit-identical results at any setting below\n"
      "  --max-in-flight N admission cap / driver threads (default 4)\n"
      "  --parallelism N   shared thread-pool concurrency; 0 = all hardware\n"
      "                    threads (default 1)\n"
      "  --rollup-out FILE write the deterministic rolled-up JSON export\n"
      "                    (schema ppgr.engine.v1)\n"
      "  --demo            run a built-in 4-session batch instead of a file\n"
      "  --help            show this message\n"
      "\n"
      "Per-session exports (FILE gains the session id before its extension,\n"
      "m.json -> m.7.json; every path is opened up front and an unwritable\n"
      "one exits 2 before any session runs):\n"
      "  --metrics-out FILE   per-phase crypto-op counters with timing\n"
      "                       (schema ppgr.metrics.v1)\n"
      "  --trace-out FILE     per-session Chrome trace-event JSON\n"
      "  --comm-out FILE      measured communication (schema ppgr.comm.v1)\n"
      "  --stitched-trace-out FILE\n"
      "                       ONE engine-wide Chrome trace: every session's\n"
      "                       spans on a shared wall-clock timeline\n"
      "                       (pid = session, tid = party)\n"
      "\n"
      "Forensics & conformance (observation-only; with all of these off\n"
      "every deterministic export is byte-identical to a build without\n"
      "them):\n"
      "  --audit               attach a live conformance auditor to every\n"
      "                        session: running counters are checked against\n"
      "                        the closed-form model at each phase boundary;\n"
      "                        confirmed drift is reported, lands in the\n"
      "                        rollup and degrades engine health\n"
      "  --flight-events N     per-session forensic flight recorder: a\n"
      "                        bounded ring of the last N protocol events\n"
      "                        (phase/round/send/retry/fault/cache), dumped\n"
      "                        into the post-mortem bundle on fault\n"
      "  --session-log-out FILE\n"
      "                        wide-event session log: ONE ppgr.session.v1\n"
      "                        JSON line per completed session\n"
      "  --postmortem-dir DIR  on a session fault, write a self-contained\n"
      "                        ppgr.postmortem.v1 bundle (wide event +\n"
      "                        flight recording + fault report + last\n"
      "                        telemetry snapshot) atomically to\n"
      "                        DIR/session-<id>.postmortem.json\n"
      "\n"
      "Live telemetry (wall-clock observations; never affects the\n"
      "deterministic exports above):\n"
      "  --telemetry-out FILE   background sampler JSONL stream, one\n"
      "                         ppgr.telemetry.v1 object per line\n"
      "  --openmetrics-out FILE OpenMetrics exposition file, atomically\n"
      "                         replaced every period (Prometheus scrape)\n"
      "  --health-out FILE      final ppgr.health.v1 verdict after the batch\n"
      "  --telemetry-period S   sampler period in seconds (default 0.1)\n"
      "  --stall-deadline S     watchdog: a session is stalled when its\n"
      "                         phase/round has not advanced for S seconds\n"
      "                         (default 5.0)\n"
      "\n"
      "Per-session request directives also include:\n"
      "  fault-plan <spec>    deterministic fault injection for this session\n"
      "                       (e.g. seed=7,drop=0.05; see net/fault.h)\n"
      "  degrade-on-dropout   rank the survivors when a participant is lost\n"
      "                       in phase 1 instead of aborting the session\n"
      "\n"
      "Exit codes:\n"
      "  0  every request parsed, was admitted and completed with ranks\n"
      "  1  fatal error (unreadable request file, I/O failure, engine abort)\n"
      "  2  usage error (bad command line, unwritable output path)\n"
      "  3  batch degraded: at least one request was malformed (dropped at\n"
      "     parse), rejected at submit, or ended in a typed protocol fault —\n"
      "     every such request is reported on stderr, the rest still ran\n"
      "  4  conformance drift: every session completed (no faults, nothing\n"
      "     malformed) but --audit confirmed at least one divergence from\n"
      "     the model — the numbers are suspect even though ranks delivered\n",
      prog, prog);
}

}  // namespace

int main(int argc, char** argv) {
  std::string input_path;
  bool demo = false;
  engine::EngineConfig cfg;
  cfg.seed = 1;
  std::string rollup_path;
  std::string metrics_path;
  std::string trace_path;
  std::string comm_path;
  std::string stitched_path;
  std::string telemetry_path;
  std::string openmetrics_path;
  std::string health_path;
  std::string session_log_path;
  std::string postmortem_dir;
  double telemetry_period = 0.1;
  double stall_deadline = 5.0;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg{argv[i]};
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc)
          throw std::invalid_argument(arg + " needs an argument");
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") {
        print_usage(argv[0], stdout);
        return 0;
      } else if (arg == "--demo") {
        demo = true;
      } else if (arg == "--seed") {
        cfg.seed = std::stoull(value());
      } else if (arg == "--max-in-flight") {
        cfg.max_in_flight = std::stoul(value());
      } else if (arg == "--parallelism") {
        cfg.parallelism = std::stoul(value());
      } else if (arg == "--rollup-out") {
        rollup_path = value();
      } else if (arg == "--metrics-out") {
        metrics_path = value();
      } else if (arg == "--trace-out") {
        trace_path = value();
      } else if (arg == "--comm-out") {
        comm_path = value();
      } else if (arg == "--stitched-trace-out") {
        stitched_path = value();
      } else if (arg == "--telemetry-out") {
        telemetry_path = value();
      } else if (arg == "--openmetrics-out") {
        openmetrics_path = value();
      } else if (arg == "--health-out") {
        health_path = value();
      } else if (arg == "--audit") {
        cfg.audit = true;
      } else if (arg == "--flight-events") {
        cfg.flight_events = std::stoul(value());
        if (cfg.flight_events == 0)
          throw std::invalid_argument("--flight-events must be > 0");
      } else if (arg == "--session-log-out") {
        session_log_path = value();
      } else if (arg == "--postmortem-dir") {
        postmortem_dir = value();
      } else if (arg == "--telemetry-period") {
        telemetry_period = std::stod(value());
        if (telemetry_period <= 0.0)
          throw std::invalid_argument("--telemetry-period must be > 0");
      } else if (arg == "--stall-deadline") {
        stall_deadline = std::stod(value());
      } else if (input_path.empty() && arg[0] != '-') {
        input_path = arg;
      } else {
        throw std::invalid_argument("unknown option '" + arg + "'");
      }
    }
    if (demo == !input_path.empty())
      throw std::invalid_argument("need a request file or --demo (not both)");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    print_usage(argv[0], stderr);
    return 2;
  }

  try {
    ParseOutcome parsed;
    if (demo)
      parsed.reqs = demo_batch();
    else
      parsed = parse_file(input_path);
    for (const std::string& err : parsed.errors)
      std::fprintf(stderr, "request error: %s\n", err.c_str());

    // Per-session export files: derive every path up front and open with
    // the bench fail-fast contract (exit 2) — a typo'd directory must not
    // cost the batch. Keyed by session id; written as results come back.
    std::map<std::uint64_t, std::ofstream> metrics_outs;
    std::map<std::uint64_t, std::ofstream> trace_outs;
    std::map<std::uint64_t, std::ofstream> comm_outs;
    for (const auto& req : parsed.reqs) {
      const std::uint64_t sid = req.session_id;
      if (!metrics_path.empty())
        metrics_outs.emplace(
            sid, bench::open_bench_out(per_session_path(metrics_path, sid)));
      if (!trace_path.empty())
        trace_outs.emplace(
            sid, bench::open_bench_out(per_session_path(trace_path, sid)));
      if (!comm_path.empty())
        comm_outs.emplace(
            sid, bench::open_bench_out(per_session_path(comm_path, sid)));
    }
    std::optional<std::ofstream> stitched_out;
    if (!stitched_path.empty())
      stitched_out = bench::open_bench_out(stitched_path);
    std::optional<std::ofstream> health_out;
    if (!health_path.empty())
      health_out = bench::open_bench_out(health_path);
    std::optional<std::ofstream> session_log_out;
    if (!session_log_path.empty())
      session_log_out = bench::open_bench_out(session_log_path);
    if (!postmortem_dir.empty()) {
      // Probe the directory with the same fail-fast contract: a bundle that
      // cannot land when a session faults is an operator trap.
      const std::string probe = postmortem_dir + "/.postmortem.probe";
      bench::open_bench_out(probe);
      std::remove(probe.c_str());
    }

    // Any telemetry output also turns on the rollup's latency/health
    // sections (EngineConfig::telemetry).
    const bool telemetry_on = !telemetry_path.empty() ||
                              !openmetrics_path.empty() ||
                              !health_path.empty();
    cfg.telemetry = cfg.telemetry || telemetry_on;

    std::size_t rejected = 0;
    std::size_t faulted = 0;
    engine::SessionEngine eng{cfg};

    std::unique_ptr<engine::EngineSampler> sampler;
    if (!telemetry_path.empty() || !openmetrics_path.empty()) {
      engine::EngineSampler::Config scfg;
      scfg.period_s = telemetry_period;
      scfg.stall_deadline_s = stall_deadline;
      scfg.jsonl_path = telemetry_path;
      scfg.openmetrics_path = openmetrics_path;
      sampler = std::make_unique<engine::EngineSampler>(eng, scfg);
      sampler->start();
    }

    std::printf("ppgr_server: %zu session(s), max_in_flight=%zu, "
                "parallelism=%zu, seed=%llu\n\n",
                parsed.reqs.size(), cfg.max_in_flight, cfg.parallelism,
                static_cast<unsigned long long>(cfg.seed));
    // Submit everything up front (open loop), then collect in order;
    // invalid requests are reported and skipped, valid ones still run.
    std::vector<std::uint64_t> ids;
    // Request context the wide-event log needs but the result doesn't carry;
    // captured before submit() moves the request away.
    std::map<std::uint64_t, engine::SessionLogInfo> log_infos;
    for (auto& req : parsed.reqs) {
      const std::uint64_t sid = req.session_id;
      log_infos[sid] = engine::SessionLogInfo{
          group::to_string(req.group), req.infos.size(), req.k};
      try {
        ids.push_back(eng.submit(std::move(req)));
      } catch (const engine::EngineError& e) {
        ++rejected;
        std::fprintf(stderr, "session %llu rejected (%s): %s\n",
                     static_cast<unsigned long long>(sid),
                     engine::to_string(e.code()), e.what());
      }
    }
    std::size_t drifted = 0;
    std::size_t log_failures = 0;
    std::vector<engine::SessionResult> results;
    results.reserve(ids.size());
    for (const std::uint64_t sid : ids) {
      results.push_back(eng.take(sid));
      const engine::SessionResult& res = results.back();
      if (session_log_out)
        *session_log_out << engine::session_wide_event_json(
                                res, log_infos[sid])
                         << '\n';
      if (res.audit != nullptr && !res.audit->clean()) {
        ++drifted;
        for (const engine::AuditFinding& f : res.audit->findings)
          std::fprintf(stderr, "audit drift: session %llu: %s\n",
                       static_cast<unsigned long long>(sid),
                       f.detail.c_str());
      }
      if (res.outcome == engine::SessionOutcome::kFault &&
          !postmortem_dir.empty()) {
        std::string err;
        const std::string path =
            engine::write_postmortem(postmortem_dir, res, log_infos[sid],
                                     engine::snapshot(eng, stall_deadline)
                                         .to_jsonl(),
                                     &err);
        if (path.empty()) {
          ++log_failures;
          std::fprintf(stderr, "postmortem error: %s\n", err.c_str());
        } else {
          std::printf("postmortem bundle written to %s\n", path.c_str());
        }
      }
      // Per-session exports: a faulted session has no observability payload
      // (he/ss are empty), so its pre-opened files stay empty.
      if (auto it = metrics_outs.find(sid);
          it != metrics_outs.end() && res.metrics() != nullptr)
        it->second << res.metrics()->to_json(/*include_timing=*/true);
      if (auto it = trace_outs.find(sid);
          it != trace_outs.end() && res.spans() != nullptr)
        it->second << res.spans()->chrome_trace_json(/*deterministic=*/false);
      if (auto it = comm_outs.find(sid);
          it != comm_outs.end() && res.comm() != nullptr)
        it->second << res.comm()->to_json();
      if (res.outcome == engine::SessionOutcome::kFault) {
        ++faulted;
        std::printf("session %llu (%s): FAULT\n", (unsigned long long)sid,
                    engine::to_string(res.framework));
        std::fprintf(stderr, "session fault: %s\n", res.fault_what.c_str());
        continue;
      }
      std::printf("session %llu (%s): n=%zu", (unsigned long long)sid,
                  engine::to_string(res.framework), res.ranks().size());
      std::printf(", ranks [");
      for (std::size_t j = 0; j < res.ranks().size(); ++j)
        std::printf("%s%zu", j == 0 ? "" : " ", res.ranks()[j]);
      std::printf("], submitted [");
      const auto& sub = res.submitted_ids();
      for (std::size_t j = 0; j < sub.size(); ++j)
        std::printf("%s%zu", j == 0 ? "" : " ", sub[j]);
      std::printf("], %.3fs\n", res.wall_seconds);
    }
    // The sampler's stop() takes one final sample, so the drained state is
    // the last JSONL line and the exposition file's final content.
    if (sampler != nullptr) {
      sampler->stop();
      std::printf("telemetry: %llu sample(s)%s%s%s%s\n",
                  static_cast<unsigned long long>(sampler->samples()),
                  telemetry_path.empty() ? "" : ", JSONL ",
                  telemetry_path.c_str(),
                  openmetrics_path.empty() ? "" : ", OpenMetrics ",
                  openmetrics_path.c_str());
    }
    if (health_out) {
      *health_out << engine::snapshot(eng, stall_deadline).health_json();
      std::printf("health JSON written to %s\n", health_path.c_str());
    }
    if (session_log_out)
      std::printf("session log written to %s\n", session_log_path.c_str());
    if (stitched_out) {
      std::vector<const engine::SessionResult*> ptrs;
      ptrs.reserve(results.size());
      for (const auto& r : results) ptrs.push_back(&r);
      *stitched_out << engine::stitched_trace_json(ptrs);
      std::printf("stitched engine trace written to %s (open in Perfetto)\n",
                  stitched_path.c_str());
    }

    const engine::PrecomputeStats stats = eng.precompute_stats();
    std::printf("\nprecompute cache: %llu hits, %llu misses "
                "(tables: gen %llu/%llu, key %llu/%llu; pools %llu/%llu)\n",
                (unsigned long long)stats.total().hits,
                (unsigned long long)stats.total().misses,
                (unsigned long long)stats.generator_table.hits,
                (unsigned long long)stats.generator_table.misses,
                (unsigned long long)stats.key_table.hits,
                (unsigned long long)stats.key_table.misses,
                (unsigned long long)stats.zero_pool.hits,
                (unsigned long long)stats.zero_pool.misses);

    if (!rollup_path.empty()) {
      std::ofstream out{rollup_path};
      if (!out)
        throw std::runtime_error("cannot open '" + rollup_path +
                                 "' for writing");
      out << eng.rollup_json();
      if (!out)
        throw std::runtime_error("failed writing '" + rollup_path + "'");
      std::printf("rollup JSON written to %s\n", rollup_path.c_str());
    }
    if (log_failures != 0)
      throw std::runtime_error("failed writing " +
                               std::to_string(log_failures) +
                               " postmortem bundle(s)");
    if (!parsed.errors.empty() || rejected != 0 || faulted != 0) {
      std::fprintf(stderr,
                   "batch degraded: %zu malformed line(s), %zu rejected, "
                   "%zu faulted\n",
                   parsed.errors.size(), rejected, faulted);
      return 3;
    }
    if (drifted != 0) {
      std::fprintf(stderr, "conformance drift: %zu session(s) diverged "
                           "from the model (see audit findings above)\n",
                   drifted);
      return 4;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

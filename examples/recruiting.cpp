// Recruiting on a business OSN (Sec. I): an employer ranks candidates for a
// position with a sensitive health requirement. This example runs BOTH
// phase-2 engines on the same inputs and contrasts them:
//
//   - the paper's identity-unlinkable framework (this library's core), and
//   - the SS baseline (Jónsson-style secret-sharing sort), which is what
//     one would build from prior work — it computes the same ranking but
//     publishes the entire rank permutation to every party.
//
// The printed ledger shows the privacy and cost difference.
#include <cstdio>

#include "core/framework.h"
#include "core/ss_framework.h"

int main() {
  using namespace ppgr;

  // [stamina score, years experience, certifications, availability hrs/wk]
  // with the health attribute "equal-to" a target and the rest
  // "greater-than".
  core::ProblemSpec spec{.m = 4, .t = 1, .d1 = 7, .d2 = 4, .h = 8};
  const core::AttrVec target{70, 0, 0, 0};
  const core::AttrVec weights{9, 4, 2, 1};

  const auto group = group::make_group(group::GroupId::kDlTest256);
  core::FrameworkConfig cfg;
  cfg.spec = spec;
  cfg.n = 7;
  cfg.k = 2;
  cfg.group = group.get();
  cfg.dot_field = &core::default_dot_field();

  const std::vector<core::AttrVec> candidates{
      {68, 12, 3, 40}, {90, 3, 1, 60}, {71, 8, 5, 35}, {50, 20, 6, 20},
      {69, 6, 2, 45},  {75, 15, 4, 50}, {66, 1, 0, 80},
  };

  mpz::ChaChaRng rng{7777};

  // --- the paper's framework ---
  const auto ours = core::run_framework(cfg, target, weights, candidates, rng);

  // --- the SS baseline on identical inputs ---
  core::SsFrameworkConfig ss_cfg;
  ss_cfg.base = cfg;
  ss_cfg.threshold = 3;  // max colluders the SS substrate tolerates (< n/2)
  const auto ss = core::run_ss_framework(ss_cfg, target, weights, candidates, rng);

  std::printf("Recruiting: %zu candidates, %zu interview slots\n\n", cfg.n,
              cfg.k);
  std::printf("Both engines select:");
  for (const auto id : ours.submitted_ids) std::printf(" C%zu", id);
  std::printf(" (identical ranking, as they must)\n\n");

  std::printf("%-34s %-22s %s\n", "", "this framework", "SS baseline");
  std::printf("%-34s %-22s %s\n", "who sees the full rank permutation",
              "nobody", "every candidate");
  std::printf("%-34s %-22s %s\n", "colluders tolerated", "n-2 = 5",
              "floor((n-1)/2) = 3");
  char rounds_ours[32], rounds_ss[32];
  std::snprintf(rounds_ours, sizeof(rounds_ours), "%zu",
                ours.trace.rounds());
  std::snprintf(rounds_ss, sizeof(rounds_ss), "%llu",
                static_cast<unsigned long long>(ss.parallel_rounds));
  std::printf("%-34s %-22s %s\n", "communication rounds", rounds_ours,
              rounds_ss);
  char bytes_ours[32], bytes_ss[32];
  std::snprintf(bytes_ours, sizeof(bytes_ours), "%.1f KB",
                static_cast<double>(ours.trace.total_bytes()) / 1e3);
  std::snprintf(bytes_ss, sizeof(bytes_ss), "%.1f KB",
                static_cast<double>(ss.trace.total_bytes()) / 1e3);
  std::printf("%-34s %-22s %s\n", "protocol traffic", bytes_ours, bytes_ss);
  std::printf("%-34s %-22s %llu\n", "secure multiplications", "0",
              static_cast<unsigned long long>(ss.sort_costs.mults));

  std::printf("\nRank check (SS reveals this table to everyone; ours only "
              "row-by-row\nto each owner):\n");
  for (std::size_t j = 0; j < cfg.n; ++j) {
    std::printf("  C%zu: rank %zu%s\n", j + 1, ours.ranks[j],
                ours.ranks[j] == ss.ranks[j] ? "" : "  (!! mismatch)");
  }
  return 0;
}

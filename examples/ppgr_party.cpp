// ppgr_party — one OS process per protocol party, over real TCP sockets.
//
// Where ppgr_cli runs all n+1 party state machines in one process over the
// deterministic in-process simulator, ppgr_party runs exactly ONE party
// (core/party_driver.h) and talks to its peers over net::tcp::TcpTransport.
// scripts/run_local.sh launches a full loopback deployment.
//
// Usage:
//   ppgr_party --party-id N --listen host:port --peers 0=h:p,1=h:p,...
//              --spec FILE --input FILE [options]
//
// The spec file is the PUBLIC instance agreement every process must share
// (any mismatch is refused at the socket handshake):
//
//   spec <m> <t> <d1> <d2> <h>
//   group <dl-1024|dl-2048|dl-3072|ecc-p192|ecc-p224|ecc-p256|dl-test-256>
//   k <top-k>
//   parties <n>                   # participant count (excl. the initiator)
//
// The input file is the party's PRIVATE data: for the initiator (party 0)
// a `criterion` and a `weights` line; for participant j a single
// `participant` line. scripts/run_local.sh splits a full ppgr_cli instance
// file into these per-party pieces.
//
// A shared --seed makes the socket run reproduce a same-seed single-process
// ppgr_cli run bit for bit (same ranks, same β values) — the verification
// harness, not a security feature. Without --seed each process draws its
// own OS entropy and the run is still a correct protocol execution.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "core/party_driver.h"
#include "net/tcp/transport.h"

namespace {

using namespace ppgr;

group::GroupId parse_group(const std::string& name) {
  static const std::map<std::string, group::GroupId> kNames = {
      {"dl-1024", group::GroupId::kDl1024},
      {"dl-2048", group::GroupId::kDl2048},
      {"dl-3072", group::GroupId::kDl3072},
      {"ecc-p192", group::GroupId::kEcP192},
      {"ecc-p224", group::GroupId::kEcP224},
      {"ecc-p256", group::GroupId::kEcP256},
      {"dl-test-256", group::GroupId::kDlTest256},
  };
  const auto it = kNames.find(name);
  if (it == kNames.end())
    throw std::invalid_argument("unknown group '" + name + "'");
  return it->second;
}

core::AttrVec parse_values(std::istringstream& line) {
  core::AttrVec values;
  std::uint64_t v;
  while (line >> v) values.push_back(v);
  if (!line.eof()) throw std::invalid_argument("non-numeric attribute value");
  return values;
}

/// The public agreement (spec file) — identical for every process.
struct SpecFile {
  core::ProblemSpec spec;
  group::GroupId group_id = group::GroupId::kEcP192;
  std::size_t k = 1;
  std::size_t parties = 0;  // participant count n
  std::string canonical;    // normalized text, hashed into the session id
};

/// The private per-party data (input file).
struct InputFile {
  core::AttrVec criterion;                 // initiator
  core::AttrVec weights;                   // initiator
  std::vector<core::AttrVec> participants; // exactly one for a participant
};

SpecFile parse_spec_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  SpecFile sf;
  bool have_spec = false;
  std::string group_name = "ecc-p192";
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const auto comment = raw.find('#');
    if (comment != std::string::npos) raw.resize(comment);
    std::istringstream line{raw};
    std::string directive;
    if (!(line >> directive)) continue;
    try {
      if (directive == "spec") {
        if (!(line >> sf.spec.m >> sf.spec.t >> sf.spec.d1 >> sf.spec.d2 >>
              sf.spec.h))
          throw std::invalid_argument("spec needs: m t d1 d2 h");
        sf.spec.validate();
        have_spec = true;
      } else if (directive == "group") {
        line >> group_name;
        sf.group_id = parse_group(group_name);
      } else if (directive == "k") {
        if (!(line >> sf.k)) throw std::invalid_argument("k needs a number");
      } else if (directive == "parties") {
        if (!(line >> sf.parties))
          throw std::invalid_argument("parties needs a number");
      } else {
        throw std::invalid_argument("unknown directive '" + directive + "'");
      }
    } catch (const std::exception& e) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) + ": " +
                               e.what());
    }
  }
  if (!have_spec) throw std::runtime_error(path + ": missing 'spec' line");
  if (sf.parties < 2)
    throw std::runtime_error(path + ": need 'parties' >= 2");
  std::ostringstream canon;
  canon << sf.spec.m << ' ' << sf.spec.t << ' ' << sf.spec.d1 << ' '
        << sf.spec.d2 << ' ' << sf.spec.h << ' ' << group_name << ' ' << sf.k
        << ' ' << sf.parties;
  sf.canonical = canon.str();
  return sf;
}

InputFile parse_input_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  InputFile f;
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const auto comment = raw.find('#');
    if (comment != std::string::npos) raw.resize(comment);
    std::istringstream line{raw};
    std::string directive;
    if (!(line >> directive)) continue;
    try {
      if (directive == "criterion") {
        f.criterion = parse_values(line);
      } else if (directive == "weights") {
        f.weights = parse_values(line);
      } else if (directive == "participant") {
        f.participants.push_back(parse_values(line));
      } else {
        throw std::invalid_argument("unknown directive '" + directive + "'");
      }
    } catch (const std::exception& e) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) + ": " +
                               e.what());
    }
  }
  return f;
}

/// FNV-1a over the canonical public parameters + framework + seed: every
/// process derives the same session id from the same agreement, and the
/// socket handshake rejects anything else.
std::uint64_t session_id(const std::string& canonical, bool ss,
                         std::size_t threshold, bool seeded,
                         std::uint64_t seed) {
  std::ostringstream all;
  all << canonical << '|' << (ss ? "ss" : "he") << '|' << threshold << '|'
      << (seeded ? seed : 0) << '|' << seeded;
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : all.str()) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Parses "0=127.0.0.1:9000,1=127.0.0.1:9001,..." into a peer table.
std::vector<net::tcp::Endpoint> parse_peers(const std::string& s,
                                            std::size_t parties) {
  std::vector<net::tcp::Endpoint> peers(parties);
  std::istringstream in{s};
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("--peers entry '" + item +
                                  "' is not id=host:port");
    const std::size_t id = std::stoul(item.substr(0, eq));
    if (id >= parties)
      throw std::invalid_argument("--peers id " + std::to_string(id) +
                                  " out of range");
    peers[id] = net::tcp::parse_endpoint(item.substr(eq + 1));
  }
  return peers;
}

void print_usage(const char* prog, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s --party-id N --listen host:port --peers 0=h:p,...\n"
      "       --spec FILE --input FILE [--seed N] [--framework he|ss]\n"
      "       [--threshold T] [--connect-timeout S] [--read-timeout S]\n"
      "       [--retries N] [--fault-out FILE] [--comm-out FILE] [--quiet]\n"
      "\n"
      "  --party-id N       own party id: 0 = initiator, 1..n participants\n"
      "  --listen host:port own listening endpoint (numeric IPv4)\n"
      "  --peers LIST       comma-separated id=host:port peer endpoints;\n"
      "                     entries for ids above --party-id may be omitted\n"
      "                     (those peers dial us)\n"
      "  --spec FILE        public instance agreement (spec/group/k/parties\n"
      "                     directives); must be identical everywhere — the\n"
      "                     handshake refuses mismatched sessions\n"
      "  --input FILE       private data: criterion+weights (initiator) or\n"
      "                     one participant line (participant)\n"
      "  --seed N           shared ChaCha20 seed; a socket run with a shared\n"
      "                     seed is bit-identical to the same-seed ppgr_cli\n"
      "                     run (verification harness, NOT a security\n"
      "                     feature). Default: per-process OS entropy\n"
      "  --framework he|ss  the paper's HE protocol (default) or the SS\n"
      "                     baseline (phase-2 sort on the sort host P1)\n"
      "  --threshold T      SS threshold t, n >= 2t+1 (default 1)\n"
      "  --connect-timeout S  per connect() attempt, seconds (default 5)\n"
      "  --read-timeout S   per-message receive deadline (default 30)\n"
      "  --retries N        extra connect attempts, doubling backoff from\n"
      "                     0.1s (default 8)\n"
      "  --fault-out FILE   write the transport fault report as JSON\n"
      "                     (schema ppgr.fault.v1)\n"
      "  --comm-out FILE    write measured communication as JSON (schema\n"
      "                     ppgr.comm.v1; round timings are wall-clock)\n"
      "  --quiet            suppress the participant's own-rank line\n"
      "  --help             show this message\n",
      prog);
}

std::ofstream open_out(const std::string& path) {
  std::ofstream out{path};
  if (!out)
    throw std::runtime_error("cannot open '" + path + "' for writing");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg{argv[i]};
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0], stdout);
      return 0;
    }
  }
  std::size_t party = 0;
  bool have_party = false;
  std::string listen_str;
  std::string peers_str;
  std::string spec_path;
  std::string input_path;
  std::uint64_t seed = 0;
  bool seeded = false;
  bool ss = false;
  std::size_t threshold = 1;
  net::tcp::SocketConfig socket_cfg;
  std::string fault_path;
  std::string comm_path;
  bool quiet = false;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg{argv[i]};
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc)
          throw std::invalid_argument(arg + " needs an argument");
        return argv[++i];
      };
      if (arg == "--party-id") {
        party = std::stoul(value());
        have_party = true;
      } else if (arg == "--listen") {
        listen_str = value();
      } else if (arg == "--peers") {
        peers_str = value();
      } else if (arg == "--spec") {
        spec_path = value();
      } else if (arg == "--input") {
        input_path = value();
      } else if (arg == "--seed") {
        seed = std::stoull(value());
        seeded = true;
      } else if (arg == "--framework") {
        const std::string fw = value();
        if (fw == "he") {
          ss = false;
        } else if (fw == "ss") {
          ss = true;
        } else {
          throw std::invalid_argument("--framework must be he or ss");
        }
      } else if (arg == "--threshold") {
        threshold = std::stoul(value());
      } else if (arg == "--connect-timeout") {
        socket_cfg.connect_timeout_s = std::stod(value());
      } else if (arg == "--read-timeout") {
        socket_cfg.read_timeout_s = std::stod(value());
        socket_cfg.write_timeout_s = socket_cfg.read_timeout_s;
      } else if (arg == "--retries") {
        socket_cfg.max_retries = std::stoul(value());
      } else if (arg == "--fault-out") {
        fault_path = value();
      } else if (arg == "--comm-out") {
        comm_path = value();
      } else if (arg == "--quiet") {
        quiet = true;
      } else {
        throw std::invalid_argument("unknown option '" + arg + "'");
      }
    }
    if (!have_party || listen_str.empty() || spec_path.empty() ||
        input_path.empty())
      throw std::invalid_argument(
          "--party-id, --listen, --spec and --input are required");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    print_usage(argv[0], stderr);
    return 2;
  }

  try {
    const SpecFile sf = parse_spec_file(spec_path);
    const InputFile inf = parse_input_file(input_path);
    const std::size_t n = sf.parties;
    if (party > n)
      throw std::runtime_error("--party-id " + std::to_string(party) +
                               " out of range (parties " + std::to_string(n) +
                               ")");
    core::PartyInput input;
    if (party == 0) {
      if (inf.criterion.empty() || inf.weights.empty())
        throw std::runtime_error(
            input_path + ": initiator input needs criterion and weights");
      input.v0 = inf.criterion;
      input.w = inf.weights;
    } else {
      if (inf.participants.size() != 1)
        throw std::runtime_error(
            input_path + ": participant input needs exactly one "
                         "participant line");
      input.info = inf.participants.front();
    }
    std::optional<std::ofstream> fault_out;
    std::optional<std::ofstream> comm_out;
    if (!fault_path.empty()) fault_out = open_out(fault_path);
    if (!comm_path.empty()) comm_out = open_out(comm_path);

    const auto group = group::make_group(sf.group_id);
    core::PartyConfig cfg;
    cfg.fw.spec = sf.spec;
    cfg.fw.n = n;
    cfg.fw.k = sf.k;
    cfg.fw.group = group.get();
    cfg.fw.dot_field = &core::default_dot_field();
    cfg.fw.metrics = comm_out.has_value();
    cfg.party = party;
    cfg.ss = ss;
    cfg.ss_threshold = threshold;

    net::tcp::TcpTransportConfig tcfg;
    tcfg.party = party;
    tcfg.parties = n + 1;
    tcfg.listen = net::tcp::parse_endpoint(listen_str);
    tcfg.peers = parse_peers(peers_str, n + 1);
    tcfg.session = session_id(sf.canonical, ss, threshold, seeded, seed);
    tcfg.socket = socket_cfg;
    net::tcp::TcpTransport transport{tcfg};
    transport.connect();

    mpz::ChaChaRng rng =
        seeded ? mpz::ChaChaRng{seed} : mpz::ChaChaRng::from_os();
    const auto result = core::run_party(cfg, input, transport, rng);
    transport.shutdown();

    if (party == 0) {
      std::printf("n=%zu participants, k=%zu, group=%s, l=%zu bits\n\n", n,
                  sf.k, group->name().c_str(), sf.spec.beta_bits());
      for (std::size_t j = 0; j < n; ++j) {
        const bool submitted =
            std::find(result.submitted_ids.begin(),
                      result.submitted_ids.end(),
                      j + 1) != result.submitted_ids.end();
        std::printf("participant %2zu: rank %2zu%s\n", j + 1, result.ranks[j],
                    submitted ? "   -> submitted to initiator" : "");
      }
      std::printf("\n");
    } else if (!quiet) {
      std::printf("party %zu: rank %zu\n", party, result.rank);
    }
    std::printf("rounds=%zu messages=%zu bytes=%zu\n", result.trace.rounds(),
                result.trace.message_count(), result.trace.total_bytes());
    const net::FaultStats& fs = result.faults.stats;
    std::printf(
        "transport: retransmits=%llu crc_detected=%llu timeouts=%llu "
        "giveups=%llu\n",
        static_cast<unsigned long long>(fs.retransmits),
        static_cast<unsigned long long>(fs.crc_detected),
        static_cast<unsigned long long>(fs.timeouts),
        static_cast<unsigned long long>(fs.giveups));
    if (fault_out) {
      *fault_out << result.faults.to_json();
      if (!*fault_out)
        throw std::runtime_error("failed writing '" + fault_path + "'");
      std::printf("fault report written to %s\n", fault_path.c_str());
    }
    if (comm_out) {
      *comm_out << result.comm->to_json();
      if (!*comm_out)
        throw std::runtime_error("failed writing '" + comm_path + "'");
      std::printf("communication JSON written to %s\n", comm_path.c_str());
    }
    return 0;
  } catch (const core::ProtocolFault& pf) {
    const core::FaultInfo& fi = pf.info();
    std::fprintf(stderr, "protocol fault: %s\n", pf.what());
    std::fprintf(stderr, "  phase: %s\n  round: %zu\n",
                 runtime::phase_name(fi.phase), fi.round);
    if (fi.party != core::kNoParty)
      std::fprintf(stderr, "  party: P%zu\n", fi.party);
    std::fprintf(stderr, "  cause: %s\n", fi.cause.c_str());
    if (!fault_path.empty()) {
      std::ofstream out{fault_path};
      out << pf.report().to_json();
      if (out)
        std::fprintf(stderr, "fault report written to %s\n",
                     fault_path.c_str());
    }
    return 4;
  } catch (const net::ChannelError& e) {
    // Transport failures outside a protocol phase (handshake, mesh
    // bring-up) are typed faults too.
    std::fprintf(stderr, "transport fault: %s\n", e.what());
    return 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// ppgr_cli — run the privacy preserving group ranking framework from a
// plain-text instance description.
//
// Usage:
//   ppgr_cli <instance-file> [--seed N] [--parallelism N]
//
// Instance format (one directive per line, '#' comments):
//
//   spec <m> <t> <d1> <d2> <h>
//   group <dl-1024|dl-2048|dl-3072|ecc-p192|ecc-p224|ecc-p256|dl-test-256>
//   k <top-k>
//   criterion <v1> ... <vm>
//   weights   <w1> ... <wm>
//   participant <v1> ... <vm>     # one line per participant
//
// Example:
//   spec 4 2 8 4 8
//   group ecc-p192
//   k 2
//   criterion 35 120 0 0
//   weights 10 5 2 1
//   participant 34 118 90 55
//   participant 52 160 20 90
//   participant 35 121 40 40
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "core/framework.h"

namespace {

using namespace ppgr;

struct CliInstance {
  core::ProblemSpec spec;
  group::GroupId group_id = group::GroupId::kEcP192;
  std::size_t k = 1;
  core::AttrVec criterion;
  core::AttrVec weights;
  std::vector<core::AttrVec> participants;
};

group::GroupId parse_group(const std::string& name) {
  static const std::map<std::string, group::GroupId> kNames = {
      {"dl-1024", group::GroupId::kDl1024},
      {"dl-2048", group::GroupId::kDl2048},
      {"dl-3072", group::GroupId::kDl3072},
      {"ecc-p192", group::GroupId::kEcP192},
      {"ecc-p224", group::GroupId::kEcP224},
      {"ecc-p256", group::GroupId::kEcP256},
      {"dl-test-256", group::GroupId::kDlTest256},
  };
  const auto it = kNames.find(name);
  if (it == kNames.end())
    throw std::invalid_argument("unknown group '" + name + "'");
  return it->second;
}

core::AttrVec parse_values(std::istringstream& line) {
  core::AttrVec values;
  std::uint64_t v;
  while (line >> v) values.push_back(v);
  if (!line.eof())
    throw std::invalid_argument("non-numeric attribute value");
  return values;
}

CliInstance parse_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  CliInstance inst;
  bool have_spec = false;
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const auto comment = raw.find('#');
    if (comment != std::string::npos) raw.resize(comment);
    std::istringstream line{raw};
    std::string directive;
    if (!(line >> directive)) continue;  // blank line
    try {
      if (directive == "spec") {
        if (!(line >> inst.spec.m >> inst.spec.t >> inst.spec.d1 >>
              inst.spec.d2 >> inst.spec.h))
          throw std::invalid_argument("spec needs: m t d1 d2 h");
        inst.spec.validate();
        have_spec = true;
      } else if (directive == "group") {
        std::string name;
        line >> name;
        inst.group_id = parse_group(name);
      } else if (directive == "k") {
        if (!(line >> inst.k)) throw std::invalid_argument("k needs a number");
      } else if (directive == "criterion") {
        inst.criterion = parse_values(line);
      } else if (directive == "weights") {
        inst.weights = parse_values(line);
      } else if (directive == "participant") {
        inst.participants.push_back(parse_values(line));
      } else {
        throw std::invalid_argument("unknown directive '" + directive + "'");
      }
    } catch (const std::exception& e) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) + ": " +
                               e.what());
    }
  }
  if (!have_spec) throw std::runtime_error(path + ": missing 'spec' line");
  if (inst.participants.size() < 2)
    throw std::runtime_error(path + ": need at least 2 participants");
  return inst;
}

}  // namespace

namespace {

void print_usage(const char* prog, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s <instance-file> [--seed N] [--parallelism N]\n"
      "\n"
      "  --seed N         deterministic run from ChaCha20 seed N (default:\n"
      "                   fresh OS entropy)\n"
      "  --parallelism N  worker threads for the execution engine; 0 = all\n"
      "                   hardware threads (default 1). Outputs are\n"
      "                   bit-identical for every N given the same seed.\n"
      "  --help           show this message\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg{argv[i]};
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0], stdout);
      return 0;
    }
  }
  if (argc < 2) {
    print_usage(argv[0], stderr);
    return 2;
  }
  std::uint64_t seed = 0;
  bool seeded = false;
  std::size_t parallelism = 1;
  try {
    for (int i = 2; i + 1 < argc; ++i) {
      if (std::string{argv[i]} == "--seed") {
        seed = std::stoull(argv[i + 1]);
        seeded = true;
      } else if (std::string{argv[i]} == "--parallelism") {
        parallelism = std::stoul(argv[i + 1]);
      }
    }
  } catch (const std::exception&) {
    std::fprintf(stderr, "error: --seed and --parallelism need a number\n");
    return 2;
  }

  try {
    const CliInstance inst = parse_file(argv[1]);
    const auto group = group::make_group(inst.group_id);
    core::FrameworkConfig cfg;
    cfg.spec = inst.spec;
    cfg.n = inst.participants.size();
    cfg.k = inst.k;
    cfg.group = group.get();
    cfg.dot_field = &core::default_dot_field();
    cfg.parallelism = parallelism;

    mpz::ChaChaRng rng = seeded ? mpz::ChaChaRng{seed}
                                : mpz::ChaChaRng::from_os();
    const auto result = core::run_framework(cfg, inst.criterion, inst.weights,
                                            inst.participants, rng);

    std::printf("n=%zu participants, k=%zu, group=%s, l=%zu bits\n\n", cfg.n,
                cfg.k, group->name().c_str(), cfg.spec.beta_bits());
    for (std::size_t j = 0; j < cfg.n; ++j) {
      std::printf("participant %2zu: rank %2zu%s\n", j + 1, result.ranks[j],
                  result.ranks[j] <= cfg.k ? "   -> submitted to initiator"
                                           : "");
    }
    std::printf("\nrounds=%zu messages=%zu bytes=%zu\n", result.trace.rounds(),
                result.trace.message_count(), result.trace.total_bytes());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// ppgr_cli — run the privacy preserving group ranking framework from a
// plain-text instance description.
//
// Usage:
//   ppgr_cli <instance-file> [--seed N] [--parallelism N]
//
// Instance format (one directive per line, '#' comments):
//
//   spec <m> <t> <d1> <d2> <h>
//   group <dl-1024|dl-2048|dl-3072|ecc-p192|ecc-p224|ecc-p256|dl-test-256>
//   k <top-k>
//   criterion <v1> ... <vm>
//   weights   <w1> ... <wm>
//   participant <v1> ... <vm>     # one line per participant
//
// Example:
//   spec 4 2 8 4 8
//   group ecc-p192
//   k 2
//   criterion 35 120 0 0
//   weights 10 5 2 1
//   participant 34 118 90 55
//   participant 52 160 20 90
//   participant 35 121 40 40
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "core/framework.h"

namespace {

using namespace ppgr;

struct CliInstance {
  core::ProblemSpec spec;
  group::GroupId group_id = group::GroupId::kEcP192;
  std::size_t k = 1;
  core::AttrVec criterion;
  core::AttrVec weights;
  std::vector<core::AttrVec> participants;
};

group::GroupId parse_group(const std::string& name) {
  static const std::map<std::string, group::GroupId> kNames = {
      {"dl-1024", group::GroupId::kDl1024},
      {"dl-2048", group::GroupId::kDl2048},
      {"dl-3072", group::GroupId::kDl3072},
      {"ecc-p192", group::GroupId::kEcP192},
      {"ecc-p224", group::GroupId::kEcP224},
      {"ecc-p256", group::GroupId::kEcP256},
      {"dl-test-256", group::GroupId::kDlTest256},
  };
  const auto it = kNames.find(name);
  if (it == kNames.end())
    throw std::invalid_argument("unknown group '" + name + "'");
  return it->second;
}

core::AttrVec parse_values(std::istringstream& line) {
  core::AttrVec values;
  std::uint64_t v;
  while (line >> v) values.push_back(v);
  if (!line.eof())
    throw std::invalid_argument("non-numeric attribute value");
  return values;
}

CliInstance parse_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  CliInstance inst;
  bool have_spec = false;
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const auto comment = raw.find('#');
    if (comment != std::string::npos) raw.resize(comment);
    std::istringstream line{raw};
    std::string directive;
    if (!(line >> directive)) continue;  // blank line
    try {
      if (directive == "spec") {
        if (!(line >> inst.spec.m >> inst.spec.t >> inst.spec.d1 >>
              inst.spec.d2 >> inst.spec.h))
          throw std::invalid_argument("spec needs: m t d1 d2 h");
        inst.spec.validate();
        have_spec = true;
      } else if (directive == "group") {
        std::string name;
        line >> name;
        inst.group_id = parse_group(name);
      } else if (directive == "k") {
        if (!(line >> inst.k)) throw std::invalid_argument("k needs a number");
      } else if (directive == "criterion") {
        inst.criterion = parse_values(line);
      } else if (directive == "weights") {
        inst.weights = parse_values(line);
      } else if (directive == "participant") {
        inst.participants.push_back(parse_values(line));
      } else {
        throw std::invalid_argument("unknown directive '" + directive + "'");
      }
    } catch (const std::exception& e) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) + ": " +
                               e.what());
    }
  }
  if (!have_spec) throw std::runtime_error(path + ": missing 'spec' line");
  if (inst.participants.size() < 2)
    throw std::runtime_error(path + ": need at least 2 participants");
  return inst;
}

}  // namespace

namespace {

void print_usage(const char* prog, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s <instance-file> [--seed N] [--parallelism N]\n"
      "       [--metrics-out FILE] [--trace-out FILE] [--comm-out FILE]\n"
      "       [--comm-trace-out FILE] [--fault-plan SPEC] [--fault-seed N]\n"
      "       [--fault-out FILE] [--degrade-on-dropout]\n"
      "\n"
      "  --seed N           deterministic run from ChaCha20 seed N (default:\n"
      "                     fresh OS entropy)\n"
      "  --parallelism N    worker threads for the execution engine; 0 = all\n"
      "                     hardware threads (default 1). Outputs are\n"
      "                     bit-identical for every N given the same seed.\n"
      "  --metrics-out FILE write per-phase crypto-op counters as JSON\n"
      "                     (schema ppgr.metrics.v1) and print a per-phase\n"
      "                     report to stdout\n"
      "  --trace-out FILE   write Chrome trace-event JSON (open in\n"
      "                     about:tracing or https://ui.perfetto.dev)\n"
      "  --comm-out FILE    write measured communication as JSON (schema\n"
      "                     ppgr.comm.v1): per-phase per-link bytes/messages\n"
      "                     and the per-message virtual-time flow log\n"
      "  --comm-trace-out FILE\n"
      "                     write network-flow Chrome trace JSON on the\n"
      "                     simulated timeline (send/receive slices linked\n"
      "                     by flow arrows; load next to --trace-out in\n"
      "                     Perfetto)\n"
      "  --fault-plan SPEC  inject a deterministic fault schedule, e.g.\n"
      "                     'seed=7,drop=0.05,corrupt=0.02' or\n"
      "                     'seed=3,crash=2@1' (see net/fault.h). The run\n"
      "                     either completes or exits 4 with a typed\n"
      "                     protocol-fault report; same SPEC => same faults\n"
      "                     at any --parallelism\n"
      "  --fault-seed N     override the SPEC's seed= field\n"
      "  --fault-out FILE   write the fault/retry report as JSON (schema\n"
      "                     ppgr.fault.v1), on success and on fault alike\n"
      "  --degrade-on-dropout\n"
      "                     rank the survivors when a participant is lost\n"
      "                     before phase-2 commitment instead of aborting\n"
      "  --help             show this message\n",
      prog);
}

/// Opens an output path for writing, failing fast (before the protocol
/// runs) so a typo'd directory doesn't cost a full run.
std::ofstream open_out(const std::string& path) {
  std::ofstream out{path};
  if (!out)
    throw std::runtime_error("cannot open '" + path + "' for writing");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg{argv[i]};
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0], stdout);
      return 0;
    }
  }
  if (argc < 2) {
    print_usage(argv[0], stderr);
    return 2;
  }
  std::uint64_t seed = 0;
  bool seeded = false;
  std::size_t parallelism = 1;
  std::string metrics_path;
  std::string trace_path;
  std::string comm_path;
  std::string comm_trace_path;
  std::string fault_spec;
  std::string fault_path;
  std::optional<std::uint64_t> fault_seed;
  std::optional<net::FaultPlanConfig> fault_cfg;
  bool degrade_on_dropout = false;
  try {
    for (int i = 2; i < argc; ++i) {
      const std::string arg{argv[i]};
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc)
          throw std::invalid_argument(arg + " needs an argument");
        return argv[++i];
      };
      if (arg == "--seed") {
        seed = std::stoull(value());
        seeded = true;
      } else if (arg == "--parallelism") {
        parallelism = std::stoul(value());
      } else if (arg == "--metrics-out") {
        metrics_path = value();
      } else if (arg == "--trace-out") {
        trace_path = value();
      } else if (arg == "--comm-out") {
        comm_path = value();
      } else if (arg == "--comm-trace-out") {
        comm_trace_path = value();
      } else if (arg == "--fault-plan") {
        fault_spec = value();
      } else if (arg == "--fault-seed") {
        fault_seed = std::stoull(value());
      } else if (arg == "--fault-out") {
        fault_path = value();
      } else if (arg == "--degrade-on-dropout") {
        degrade_on_dropout = true;
      } else {
        throw std::invalid_argument("unknown option '" + arg + "'");
      }
    }
    if (fault_spec.empty() && (fault_seed.has_value() || !fault_path.empty()))
      throw std::invalid_argument(
          "--fault-seed/--fault-out need a --fault-plan");
    // A malformed spec is a usage error: parse it here so it exits 2 with
    // the usage text, not 1 from the run path.
    if (!fault_spec.empty()) {
      fault_cfg = net::parse_fault_plan(fault_spec);
      if (fault_seed.has_value()) fault_cfg->seed = *fault_seed;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    print_usage(argv[0], stderr);
    return 2;
  }

  try {
    const CliInstance inst = parse_file(argv[1]);
    // Validate output paths before spending time on the protocol run.
    std::optional<std::ofstream> metrics_out;
    std::optional<std::ofstream> trace_out;
    std::optional<std::ofstream> comm_out;
    std::optional<std::ofstream> comm_trace_out;
    if (!metrics_path.empty()) metrics_out = open_out(metrics_path);
    if (!trace_path.empty()) trace_out = open_out(trace_path);
    if (!comm_path.empty()) comm_out = open_out(comm_path);
    if (!comm_trace_path.empty()) comm_trace_out = open_out(comm_trace_path);

    const auto group = group::make_group(inst.group_id);
    core::FrameworkConfig cfg;
    cfg.spec = inst.spec;
    cfg.n = inst.participants.size();
    cfg.k = inst.k;
    cfg.group = group.get();
    cfg.dot_field = &core::default_dot_field();
    cfg.parallelism = parallelism;
    cfg.metrics = metrics_out.has_value() || trace_out.has_value() ||
                  comm_out.has_value() || comm_trace_out.has_value();

    std::optional<net::FaultPlan> fault_plan;
    if (fault_cfg.has_value()) {
      fault_plan.emplace(*fault_cfg);
      cfg.fault_plan = &*fault_plan;
      cfg.degrade_on_dropout = degrade_on_dropout;
    }
    std::optional<std::ofstream> fault_out;
    if (!fault_path.empty()) fault_out = open_out(fault_path);

    mpz::ChaChaRng rng = seeded ? mpz::ChaChaRng{seed}
                                : mpz::ChaChaRng::from_os();
    const auto result = core::run_framework(cfg, inst.criterion, inst.weights,
                                            inst.participants, rng);

    std::printf("n=%zu participants, k=%zu, group=%s, l=%zu bits\n\n", cfg.n,
                cfg.k, group->name().c_str(), cfg.spec.beta_bits());
    for (std::size_t j = 0; j < cfg.n; ++j) {
      if (result.ranks[j] == 0) {
        std::printf("participant %2zu: dropped (lost in phase 1)\n", j + 1);
        continue;
      }
      std::printf("participant %2zu: rank %2zu%s\n", j + 1, result.ranks[j],
                  result.ranks[j] <= cfg.k ? "   -> submitted to initiator"
                                           : "");
    }
    std::printf("\nrounds=%zu messages=%zu bytes=%zu\n", result.trace.rounds(),
                result.trace.message_count(), result.trace.total_bytes());
    if (result.faults.has_value()) {
      const net::FaultStats& fs = result.faults->stats;
      std::printf(
          "faults: injected=%llu retransmits=%llu crc_detected=%llu "
          "timeouts=%llu giveups=%llu\n",
          static_cast<unsigned long long>(fs.injected_total()),
          static_cast<unsigned long long>(fs.retransmits),
          static_cast<unsigned long long>(fs.crc_detected),
          static_cast<unsigned long long>(fs.timeouts),
          static_cast<unsigned long long>(fs.giveups));
    }
    if (fault_out) {
      if (!result.faults.has_value())
        throw std::runtime_error("--fault-out: run produced no fault report");
      *fault_out << result.faults->to_json();
      if (!*fault_out)
        throw std::runtime_error("failed writing '" + fault_path + "'");
      std::printf("fault report written to %s\n", fault_path.c_str());
    }

    if (metrics_out) {
      *metrics_out << result.metrics->to_json(/*include_timing=*/true);
      if (!*metrics_out)
        throw std::runtime_error("failed writing '" + metrics_path + "'");
      std::printf("\n%s\nmetrics JSON written to %s\n",
                  runtime::phase_report(*result.metrics, result.spans.get(),
                                        result.comm.get())
                      .c_str(),
                  metrics_path.c_str());
    }
    if (trace_out) {
      *trace_out << result.spans->chrome_trace_json(/*deterministic=*/false);
      if (!*trace_out)
        throw std::runtime_error("failed writing '" + trace_path + "'");
      std::printf("Chrome trace written to %s (open in about:tracing)\n",
                  trace_path.c_str());
    }
    if (comm_out) {
      *comm_out << result.comm->to_json();
      if (!*comm_out)
        throw std::runtime_error("failed writing '" + comm_path + "'");
      std::printf("communication JSON written to %s\n", comm_path.c_str());
    }
    if (comm_trace_out) {
      *comm_trace_out << result.comm->chrome_trace_json();
      if (!*comm_trace_out)
        throw std::runtime_error("failed writing '" + comm_trace_path + "'");
      std::printf("network-flow trace written to %s (open in Perfetto)\n",
                  comm_trace_path.c_str());
    }
    return 0;
  } catch (const core::ProtocolFault& pf) {
    const core::FaultInfo& fi = pf.info();
    std::fprintf(stderr, "protocol fault: %s\n", pf.what());
    std::fprintf(stderr, "  phase: %s\n  round: %zu\n",
                 runtime::phase_name(fi.phase), fi.round);
    if (fi.party != core::kNoParty)
      std::fprintf(stderr, "  party: P%zu\n", fi.party);
    std::fprintf(stderr, "  cause: %s\n", fi.cause.c_str());
    if (!fault_path.empty()) {
      std::ofstream out{fault_path};
      out << pf.report().to_json();
      if (out)
        std::fprintf(stderr, "fault report written to %s\n",
                     fault_path.c_str());
    }
    return 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

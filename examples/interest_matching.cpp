// Personal interest matching (Sec. I): a person wants to find the "best
// matched" people in a group by ranking them against her own preference
// vector over *sensitive* attributes — here, positions on political and
// lifestyle questions — without anyone's answers leaking.
//
// The matcher plays the initiator role with all-"equal-to" attributes
// (t = m): the gain is the negated weighted squared distance to her own
// profile, so rank 1 = closest match. Demonstrates:
//  - a pure equal-to instance of Def. 1;
//  - identity unlinkability in action: the matcher learns WHICH ranks
//    exist, and only the top-k reveal themselves.
#include <cstdio>

#include "core/framework.h"

int main() {
  using namespace ppgr;

  // Five 0-10 scale survey questions, all "equal-to".
  core::ProblemSpec spec{.m = 5, .t = 5, .d1 = 4, .d2 = 4, .h = 8};
  const char* questions[] = {"economic policy", "civil liberties",
                             "environment", "religion", "urban/rural"};

  // The matcher's own profile and how much she cares per question.
  const core::AttrVec my_profile{7, 9, 8, 2, 6};
  const core::AttrVec my_weights{5, 8, 6, 2, 3};

  const auto group = group::make_group(group::GroupId::kEcP192);
  core::FrameworkConfig cfg;
  cfg.spec = spec;
  cfg.n = 8;
  cfg.k = 2;  // reveal only the two best matches
  cfg.group = group.get();
  cfg.dot_field = &core::default_dot_field();

  // The candidate pool (each vector is private to its owner).
  const std::vector<core::AttrVec> candidates{
      {6, 9, 7, 3, 6},   // very close
      {1, 2, 3, 9, 1},   // opposite
      {7, 8, 8, 2, 5},   // very close
      {5, 5, 5, 5, 5},   // neutral
      {8, 9, 9, 1, 7},   // close
      {2, 3, 10, 8, 2},  //
      {7, 9, 8, 2, 6},   // identical profile
      {0, 0, 0, 10, 0},  //
  };

  mpz::ChaChaRng rng = mpz::ChaChaRng::from_os();
  const auto result =
      core::run_framework(cfg, my_profile, my_weights, candidates, rng);

  std::printf("Interest matching over %zu sensitive questions (", spec.m);
  for (std::size_t q = 0; q < spec.m; ++q)
    std::printf("%s%s", questions[q], q + 1 < spec.m ? ", " : ")\n\n");

  std::printf("Best matches who chose to reveal themselves (top-%zu):\n",
              cfg.k);
  for (const auto id : result.submitted_ids) {
    std::printf("  candidate %zu (rank %zu, weighted distance %s)\n", id,
                result.ranks[id - 1],
                core::gain(spec, my_profile, my_weights, candidates[id - 1])
                    .negated()
                    .to_dec()
                    .c_str());
  }
  std::printf("\nEveryone else only learned their own rank; the matcher "
              "cannot tell\nwhich hidden candidate holds which remaining "
              "rank (identity\nunlinkability, Def. 7 of the paper).\n");
  return 0;
}

// Quickstart: run the whole privacy preserving group ranking framework
// in-process with 6 participants and an initiator.
//
//   $ ./build/examples/quickstart
//
// The initiator publishes a 4-attribute questionnaire (2 "equal-to"
// attributes, 2 "greater-than") and wants the top k=2 participants. Every
// participant learns exactly her own rank; the initiator learns only the
// top-2 vectors.
#include <cstdio>

#include "core/framework.h"

int main() {
  using namespace ppgr;

  // 1. Problem: m=4 attributes, the first t=2 are "equal-to".
  core::ProblemSpec spec{.m = 4, .t = 2, .d1 = 8, .d2 = 4, .h = 8};

  // 2. Pick the DDH group (P-192 elliptic curve — the fast configuration)
  //    and the phase-1 field, then assemble the framework configuration.
  const auto group = group::make_group(group::GroupId::kEcP192);
  core::FrameworkConfig cfg;
  cfg.spec = spec;
  cfg.n = 6;  // participants
  cfg.k = 2;  // how many winners the initiator invites
  cfg.group = group.get();
  cfg.dot_field = &core::default_dot_field();

  // 3. Inputs. Initiator: criterion vector v0 (ideal values for the
  //    equal-to attributes; zeros elsewhere) and weights w.
  const core::AttrVec v0{35, 120, 0, 0};  // ideal age 35, blood pressure 120
  const core::AttrVec w{10, 5, 2, 1};
  //    Participants: information vectors
  //    [age, blood pressure, friends, income(k$)].
  const std::vector<core::AttrVec> infos{
      {34, 118, 90, 55},  // close to ideal, well connected
      {52, 160, 20, 90},  // far from ideal
      {35, 121, 40, 40},  // nearly ideal
      {29, 130, 70, 35},  //
      {41, 125, 15, 70},  //
      {36, 119, 55, 60},  // close to ideal
  };

  // 4. Run all three phases (HBC, in-process).
  mpz::ChaChaRng rng = mpz::ChaChaRng::from_os();
  const auto result = core::run_framework(cfg, v0, w, infos, rng);

  // 5. What each party gets to see.
  std::printf("Participant ranks (each participant learns ONLY her own):\n");
  for (std::size_t j = 0; j < cfg.n; ++j) {
    const auto g = core::gain(spec, v0, w, infos[j]);
    std::printf("  P%zu: rank %zu   (true gain %s — never revealed)\n", j + 1,
                result.ranks[j], g.to_dec().c_str());
  }
  std::printf("\nInitiator receives the top-%zu submissions:", cfg.k);
  for (const auto id : result.submitted_ids) std::printf(" P%zu", id);
  std::printf("\n\nProtocol cost: %zu communication rounds, %zu messages, "
              "%.1f KB total\n",
              result.trace.rounds(), result.trace.message_count(),
              static_cast<double>(result.trace.total_bytes()) / 1e3);
  return 0;
}
